module Rng = Jury_sim.Rng

type failure = {
  lineage : string;
  case : Case.t;
  violations : (Oracle.t * string) list;
  shrink : Shrink.outcome option;
}

type summary = {
  executed : int;
  seed_cases : int;
  corpus : Corpus.t;
  blind_features : int;
  failures : failure list;
}

(* The cheap per-run families: one deployment execution plus a replay,
   no shard/batch/parallel sweeps — the right cost profile for a
   budget loop that wants throughput. *)
let default_oracles () =
  Registry.by_family "conservation"
  @ Registry.by_family "channel"
  @ Registry.by_family "obs"

let repro f =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "fuzz mutant FAILED";
  line "  lineage: %s" f.lineage;
  line "  replay: jury_cli check --replay '%s'" f.lineage;
  line "  case: %s" (Format.asprintf "%a" Case.pp f.case);
  List.iter
    (fun ((o : Oracle.t), msg) ->
      line "  oracle %s [%s]: %s" o.Oracle.name o.Oracle.family msg)
    f.violations;
  (match f.shrink with
  | None -> ()
  | Some s ->
      line "  shrunk (%d reductions, %d executions): %s" s.Shrink.shrunk
        s.Shrink.steps
        (Format.asprintf "%a" Case.pp s.Shrink.minimal));
  let minimal =
    match f.shrink with Some s -> s.Shrink.minimal | None -> f.case
  in
  line "  corpus entry:";
  line "let () =";
  line "  add ~name:\"fuzz-%s\" ~oracle:\"%s\""
    (match String.split_on_char ' ' f.lineage with t :: _ -> t | [] -> "case")
    (match f.violations with
    | ((o : Oracle.t), _) :: _ -> o.Oracle.name
    | [] -> "unknown");
  Buffer.add_string b (Case.to_ocaml ~indent:"    " minimal);
  Buffer.contents b

let run ?(log = ignore) ?oracles ?seed_cases ?(max_shrink = 0)
    ~budget ~seed () =
  let oracles = match oracles with Some o -> o | None -> default_oracles () in
  (* Most of the budget goes to blind seeding: the corpus then carries
     nearly all of blind mode's axis diversity (whose marginal feature
     yield decays fast), and the guided tail adds what only mutation
     reaches — the stateful fault vocabulary and compound axis moves. *)
  let seed_cases =
    match seed_cases with Some n -> n | None -> max 1 (budget * 3 / 4)
  in
  let corpus = Corpus.create () in
  let rng = Rng.create seed in
  let executed = ref 0 in
  let failures = ref [] in
  (* One primary execution: trace attached (for phase features),
     outcome shared between coverage extraction and the oracle battery
     so the case runs once. *)
  let run_case ~lineage case =
    let tr = Jury_obs.Trace.create () in
    let outcome = Run.execute ~trace:tr case in
    incr executed;
    let cov = Coverage.of_run ~trace:tr case outcome in
    let ctx = { (Oracle.ctx case) with Oracle.base = Lazy.from_val outcome } in
    (match Oracle.check_run ~oracles ctx with
    | [] -> ()
    | violations ->
        let shrink =
          if max_shrink <= 0 then None
          else
            Some (Shrink.minimise ~max_steps:max_shrink ~oracles case violations)
        in
        let f = { lineage; case; violations; shrink } in
        failures := f :: !failures;
        log (repro f));
    cov
  in
  (* Seed the pool with blind cases; their features are the baseline
     guided mutation must beat. *)
  let seeds = min seed_cases budget in
  for i = 0 to seeds - 1 do
    let base_seed = seed + i in
    let case = Case.generate ~seed:base_seed in
    let cov = run_case ~lineage:(Printf.sprintf "seed=%d" base_seed) case in
    ignore (Corpus.admit corpus ~base_seed ~trace:[] case cov)
  done;
  let blind_features = Corpus.feature_count corpus in
  log
    (Printf.sprintf "seeded %d blind case(s): corpus %d, %d feature(s)" seeds
       (Corpus.size corpus) blind_features);
  (* Budget loop: pick an entry and a mutator, run the mutant, admit
     on novelty. Mutation attempts that do not apply cost no
     executions; the attempt cap bounds the loop when the move set is
     exhausted. *)
  let attempts = ref 0 in
  let max_attempts = 20 * budget in
  (* fault-inject is over-weighted: it is the sole door into the
     stateful vocabulary (rejoin / Byzantine / partition / policy
     churn), where blind coverage can never follow. *)
  let mutators =
    let inject =
      List.filter (fun (m : Mutate.t) -> m.Mutate.name = "fault-inject")
        Mutate.all
    in
    Array.of_list
      (Mutate.all @ inject @ inject @ inject @ inject @ inject @ inject)
  in
  while !executed < budget && !attempts < max_attempts && Corpus.size corpus > 0
  do
    incr attempts;
    let entry = Corpus.nth corpus (Rng.int rng (Corpus.size corpus)) in
    (* Compound moves (1–3 stacked steps) cover axis combinations a
       single lens tweak cannot; steps that do not apply are skipped
       without burning budget. *)
    let steps = 1 + Rng.int rng 3 in
    let case, rev_steps =
      let rec go n case acc =
        if n = 0 then (case, acc)
        else
          let m = Rng.choice rng mutators in
          let step_seed = Rng.int rng 1_000_000_000 in
          match Mutate.apply m ~step_seed case with
          | None -> go (n - 1) case acc
          | Some case' -> go (n - 1) case' ((m.Mutate.name, step_seed) :: acc)
      in
      go steps entry.Corpus.case []
    in
    match rev_steps with
    | [] -> ()
    | _ ->
        let trace = entry.Corpus.trace @ List.rev rev_steps in
        let lineage =
          Corpus.lineage_of ~base_seed:entry.Corpus.base_seed ~trace
        in
        let cov = run_case ~lineage case in
        (match
           Corpus.admit corpus ~base_seed:entry.Corpus.base_seed ~trace case
             cov
         with
        | None -> ()
        | Some e ->
            log
              (Printf.sprintf "  + corpus %s (%d feature(s) new): %s"
                 e.Corpus.id
                 (List.length e.Corpus.novel)
                 lineage));
        if !executed mod 25 = 0 then
          log
            (Printf.sprintf "  ... %d/%d runs, corpus %d, %d feature(s)"
               !executed budget (Corpus.size corpus)
               (Corpus.feature_count corpus))
  done;
  { executed = !executed;
    seed_cases = seeds;
    corpus;
    blind_features;
    failures = List.rev !failures }

let blind_feature_count ~cases ~seed () =
  let cov = ref Coverage.empty in
  for i = 0 to cases - 1 do
    let case = Case.generate ~seed:(seed + i) in
    let tr = Jury_obs.Trace.create () in
    let outcome = Run.execute ~trace:tr case in
    cov := Coverage.union !cov (Coverage.of_run ~trace:tr case outcome)
  done;
  Coverage.cardinal !cov
