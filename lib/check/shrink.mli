(** Greedy minimisation of a failing case.

    Given a case and the oracles it violates, the shrinker walks a
    fixed list of reduction axes — fewer fault events, fewer triggers,
    fewer switches and hosts, shorter and slower workload, fewer
    cluster nodes, smaller [k], a quiet channel, and simpler validator
    knobs — keeping the first candidate at each step that still fails
    at least one of the original oracles, until no axis makes progress
    (or [max_steps] re-executions have been spent).

    Shrinking re-runs the system under test, so each accepted step is
    as expensive as the original failure; [max_steps] bounds the total
    work. The result is always a case that fails (the input itself if
    nothing smaller does). *)

type outcome = {
  minimal : Case.t;          (** smallest failing case found *)
  failures : (Oracle.t * string) list;
      (** the violations [minimal] exhibits *)
  steps : int;               (** candidate executions spent *)
  shrunk : int;              (** accepted reductions *)
}

val candidates : Case.t -> Case.t list
(** The one-step reductions of a case, largest-first along each axis;
    exposed for tests. Every candidate is strictly "smaller" under
    {!size}. *)

val size : Case.t -> int
(** A scalar measure of case size (switches, triggers, faults, knobs)
    that every accepted shrink strictly decreases — termination is a
    corollary. *)

val minimise :
  ?max_steps:int ->
  oracles:Oracle.t list ->
  Case.t -> (Oracle.t * string) list -> outcome
(** [minimise ~oracles case failures] requires [failures] to be
    non-empty (the case as generated must already fail). Default
    [max_steps] is 200. *)
