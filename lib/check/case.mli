(** A generated fuzz case: one complete, replayable JURY scenario.

    A case bundles everything one end-to-end run depends on — topology,
    cluster shape, workload, fault schedule, channel loss model and
    {!Jury.Jury_config} knobs — as a record of scalars. Two properties
    make the harness work:

    + {b Replayability}: {!generate} is a pure function of the seed, so
      any case (and thus any failure) is reproduced bit-identically
      from the single integer printed in the failure report.
    + {b Shrinkability}: every axis is an independent field, so
      {!Shrink} can minimise a failing case by moving one field at a
      time toward its smallest value and re-checking the oracle.

    Hand-written cases (the {e repro corpus} under [test/repros/]) use
    the same record type; {!to_ocaml} renders any case as an OCaml
    literal ready to append there. *)

type topo_kind =
  | Linear  (** the paper's Mininet chain *)
  | Ring
  | Star    (** one core, [switches] leaves *)
  | Single  (** one switch, [switches] hosts *)

type workload_kind =
  | Mix          (** {!Jury_workload.Flows.controlled_mix} *)
  | Connections  (** {!Jury_workload.Flows.new_connections} *)
  | Joins        (** {!Jury_workload.Flows.host_joins} *)
  | Blast        (** {!Jury_workload.Cbench.blast} at host 0's switch *)

(** One reversible fault lever applied to a replica mid-run, via
    {!Jury_faults.Injector}.

    The first seven constructors are the blind generator's vocabulary.
    The last five — crash-rejoin resync, Byzantine responses, a
    store-level partition, mid-run policy churn and mastership
    failover — are {e never} drawn blindly (the generator's draw
    sequence is pinned by replayability across releases); they enter a
    case only through {!Mutate}, so guided fuzzing explores them while
    blind-mode fingerprints stay byte-identical. *)
type fault_action =
  | Slow of { node : int; delay_ms : int }  (** timing fault *)
  | Lossy of { node : int; omit : float }   (** response omission *)
  | Crash of { node : int }
  | Drop_sends of { node : int }            (** lost FLOW_MODs (T2) *)
  | Blackhole of { node : int }             (** undesirable FLOW_MODs *)
  | Lock_cache of { node : int; cache : string }
  | Heal of { node : int }
  | Rejoin of { node : int }
      (** crash-and-rejoin: clear the node's levers and partition,
          resync its store from a healthy peer and resume responding *)
  | Byzantine of { node : int }
      (** plausible-but-wrong snapshots and actions from one replica *)
  | Partition of { node : int }
      (** store-level split: the node's writes stay local and peers'
          replication never reaches it (heal or rejoin reconnects) *)
  | Add_rule of { rule : string }
      (** policy churn: parse one {!Jury_policy.Parse} DSL line and
          [add_rule] it into the live engine while triggers are in
          flight (unparsable rules are ignored) *)
  | Fail_master of { node : int }
      (** crash plus an explicit HA failover
          ({!Jury_controller.Cluster.fail_over}): the node's switches
          move to the survivors mid-run (skipped when it is the last
          survivor) *)

type fault_event = { at_ms : int; action : fault_action }
(** [at_ms] is relative to the start of the workload window. *)

type t = {
  case_seed : int;       (** seeds the engine and every derived stream *)
  topo : topo_kind;
  switches : int;        (** switches (Linear/Ring), leaves (Star), hosts (Single) *)
  hosts_per_switch : int;
  nodes : int;           (** cluster size *)
  k : int;               (** replication factor, < [nodes] *)
  odl : bool;            (** ODL profile (encapsulation) vs ONOS *)
  workload : workload_kind;
  rate : float;          (** events per simulated second *)
  duration_ms : int;     (** workload window *)
  faults : fault_event list;
  drop : float;          (** channel loss probability *)
  duplicate : float;     (** channel duplication probability *)
  jitter_us : float;     (** channel reorder jitter (mean, µs) *)
  retries : int;         (** retransmission rounds; 0 = none *)
  degraded_quorum : int option;
  shards : int;          (** validator shard hint *)
  max_inflight : int option;
  batch_us : int option; (** response-ingestion batch window *)
  triggers : int;        (** synthetic stream length for the batching oracle *)
}

val generate : seed:int -> t
(** The case denoted by [seed] — deterministic, total, and independent
    of any ambient state. *)

val zero_loss : t -> bool
(** No drop, no duplication, no jitter — the channel profile is
    required to behave bit-for-bit like {!Jury.Channel.reliable}. *)

val channel : t -> Jury.Channel.profile
(** The out-of-band channel profile the case prescribes (via
    [Jury_config.lossy_channel], so the knobs are validated). *)

val jury_config :
  ?shards:int -> ?batch_us:int option -> ?pipeline_jobs:int ->
  ?policies:Jury_policy.Engine.t ->
  ?force_reliable:bool -> ?deterministic:bool -> t ->
  Jury.Jury_config.t
(** The {!Jury.Jury_config.t} the case denotes. The optional arguments
    override single axes for the equivalence oracles: [shards] and
    [batch_us] replace the case's values; [force_reliable] substitutes
    {!Jury.Channel.reliable} for the case's (zero-loss) profile;
    [deterministic] sets [deterministic_latencies] (the schedule
    explorer's jitter-free mode, see {!Jury.Jury_config.make}).
    [policies] supplies the (initially empty) live policy engine the
    [Add_rule] fault mutates mid-run; the default is an empty engine,
    identical to the historical behaviour. [pipeline_jobs] —
    {e including} [Some 1] — additionally projects the case onto the
    staged pipeline's eligible feature set (retransmission off, no
    in-flight cap, batching on, default 200 µs) so runs differing only
    in the job count compare like for like. *)

val pp : Format.formatter -> t -> unit
(** One-line summary for failure reports. *)

val to_ocaml : ?indent:string -> t -> string
(** The case as an OCaml record literal (fields qualified with
    [Jury_check.Case.]), ready to paste into the repro corpus. *)

val equal : t -> t -> bool
(** Structural equality — cases contain no closures or cycles. *)

(** Per-axis read/update lenses — the one axis surface {!Shrink} and
    {!Mutate} share instead of duplicating record surgery.

    Every [set] clamps to the axis's validity floor (ring topologies
    keep ≥ 3 switches, [k] stays in [\[1, nodes-1\]], the degraded
    quorum within [k], fault node references inside the cluster, …),
    so lens updates map valid cases to valid cases. The one
    cross-axis constraint no single axis can repair — the workloads'
    host floor — stays the {!Lens.hosts_floor} predicate: Shrink drops
    candidates that violate it, Mutate rejects such mutants. *)
module Lens : sig
  type case = t

  type 'a axis = {
    name : string;           (** stable axis identifier *)
    get : case -> 'a;
    set : case -> 'a -> case;  (** clamped to the axis's validity floor *)
  }

  val min_switches : case -> int
  (** 3 on a ring, 1 otherwise. *)

  val min_hosts_per_switch : case -> int
  (** 2 under Blast, 1 otherwise. *)

  val hosts_floor : case -> bool
  (** The workloads' two-reachable-hosts floor (Joins needs one). *)

  val clamp_fault_nodes : nodes:int -> fault_event list -> fault_event list
  (** Every fault's node reference clamped into [\[0, nodes-1\]]. *)

  val topo : topo_kind axis
  val switches : int axis
  val hosts_per_switch : int axis
  val workload : workload_kind axis
  val nodes : int axis
  val k : int axis
  val odl : bool axis
  val rate : float axis
  val duration_ms : int axis
  val faults : fault_event list axis
  val drop : float axis
  val duplicate : float axis
  val jitter_us : float axis
  val retries : int axis
  val degraded_quorum : int option axis
  val shards : int axis
  val max_inflight : int option axis
  val batch_us : int option axis
  val triggers : int axis
end
