(** A generated fuzz case: one complete, replayable JURY scenario.

    A case bundles everything one end-to-end run depends on — topology,
    cluster shape, workload, fault schedule, channel loss model and
    {!Jury.Jury_config} knobs — as a record of scalars. Two properties
    make the harness work:

    + {b Replayability}: {!generate} is a pure function of the seed, so
      any case (and thus any failure) is reproduced bit-identically
      from the single integer printed in the failure report.
    + {b Shrinkability}: every axis is an independent field, so
      {!Shrink} can minimise a failing case by moving one field at a
      time toward its smallest value and re-checking the oracle.

    Hand-written cases (the {e repro corpus} under [test/repros/]) use
    the same record type; {!to_ocaml} renders any case as an OCaml
    literal ready to append there. *)

type topo_kind =
  | Linear  (** the paper's Mininet chain *)
  | Ring
  | Star    (** one core, [switches] leaves *)
  | Single  (** one switch, [switches] hosts *)

type workload_kind =
  | Mix          (** {!Jury_workload.Flows.controlled_mix} *)
  | Connections  (** {!Jury_workload.Flows.new_connections} *)
  | Joins        (** {!Jury_workload.Flows.host_joins} *)
  | Blast        (** {!Jury_workload.Cbench.blast} at host 0's switch *)

(** One reversible fault lever applied to a replica mid-run, via
    {!Jury_faults.Injector}. *)
type fault_action =
  | Slow of { node : int; delay_ms : int }  (** timing fault *)
  | Lossy of { node : int; omit : float }   (** response omission *)
  | Crash of { node : int }
  | Drop_sends of { node : int }            (** lost FLOW_MODs (T2) *)
  | Blackhole of { node : int }             (** undesirable FLOW_MODs *)
  | Lock_cache of { node : int; cache : string }
  | Heal of { node : int }

type fault_event = { at_ms : int; action : fault_action }
(** [at_ms] is relative to the start of the workload window. *)

type t = {
  case_seed : int;       (** seeds the engine and every derived stream *)
  topo : topo_kind;
  switches : int;        (** switches (Linear/Ring), leaves (Star), hosts (Single) *)
  hosts_per_switch : int;
  nodes : int;           (** cluster size *)
  k : int;               (** replication factor, < [nodes] *)
  odl : bool;            (** ODL profile (encapsulation) vs ONOS *)
  workload : workload_kind;
  rate : float;          (** events per simulated second *)
  duration_ms : int;     (** workload window *)
  faults : fault_event list;
  drop : float;          (** channel loss probability *)
  duplicate : float;     (** channel duplication probability *)
  jitter_us : float;     (** channel reorder jitter (mean, µs) *)
  retries : int;         (** retransmission rounds; 0 = none *)
  degraded_quorum : int option;
  shards : int;          (** validator shard hint *)
  max_inflight : int option;
  batch_us : int option; (** response-ingestion batch window *)
  triggers : int;        (** synthetic stream length for the batching oracle *)
}

val generate : seed:int -> t
(** The case denoted by [seed] — deterministic, total, and independent
    of any ambient state. *)

val zero_loss : t -> bool
(** No drop, no duplication, no jitter — the channel profile is
    required to behave bit-for-bit like {!Jury.Channel.reliable}. *)

val channel : t -> Jury.Channel.profile
(** The out-of-band channel profile the case prescribes (via
    [Jury_config.lossy_channel], so the knobs are validated). *)

val jury_config :
  ?shards:int -> ?batch_us:int option -> ?pipeline_jobs:int ->
  ?force_reliable:bool -> ?deterministic:bool -> t ->
  Jury.Jury_config.t
(** The {!Jury.Jury_config.t} the case denotes. The optional arguments
    override single axes for the equivalence oracles: [shards] and
    [batch_us] replace the case's values; [force_reliable] substitutes
    {!Jury.Channel.reliable} for the case's (zero-loss) profile;
    [deterministic] sets [deterministic_latencies] (the schedule
    explorer's jitter-free mode, see {!Jury.Jury_config.make}).
    [pipeline_jobs] — {e including} [Some 1] — additionally projects
    the case onto the staged pipeline's eligible feature set
    (retransmission off, no in-flight cap, batching on, default 200 µs)
    so runs differing only in the job count compare like for like. *)

val pp : Format.formatter -> t -> unit
(** One-line summary for failure reports. *)

val to_ocaml : ?indent:string -> t -> string
(** The case as an OCaml record literal (fields qualified with
    [Jury_check.Case.]), ready to paste into the repro corpus. *)

val equal : t -> t -> bool
(** Structural equality — cases contain no closures or cycles. *)
