(** Policy evaluation — the reference interpreter.

    The validator checks each validated response's actions against the
    policy set (one of the matching replica responses — §V notes one
    check per policy suffices once consensus holds). Evaluation is
    {e global insertion-order first match}: the first rule of
    {!rules} that matches the query decides, wherever its cache
    selector put it internally, and an unmatched query is allowed.
    Cache names are normalised on both sides, so hand-built queries and
    DSL/XML policies cannot disagree on casing.

    This module is the semantics of record: the hot path uses the
    {!Compiled} decision structure (via {!compiled}), which is held
    verdict-for-verdict equivalent to {!check} by the [jury_check]
    [policy] oracle. *)

type t

val create : Ast.rule list -> t
(** Rules in precedence order (first rule wins). Policy load is linear
    in the rule count. *)

val rules : t -> Ast.rule list
(** In insertion (= precedence) order. *)

val rule_count : t -> int
(** O(1). *)

val add_rule : t -> Ast.rule -> unit
(** Append at lowest precedence (after every existing rule). O(1);
    invalidates the {!compiled} view. *)

val generation : t -> int
(** Monotone counter bumped by {!add_rule}; equal generations imply an
    unchanged rule set. *)

val compiled : t -> Compiled.t
(** The rule set compiled to a dispatch trie, memoised per
    {!generation}: the first call after construction or {!add_rule}
    compiles, later calls return the cached structure. Callers sharing
    an engine across domains should force this once before fanning out
    (as {!Jury.Jury_config.make} does). *)

type verdict = Compiled.verdict = Allowed | Denied of Ast.rule

val check : t -> Ast.query -> verdict
(** First matching rule in insertion order decides; no match allows. *)

val check_all : t -> Ast.query list -> Ast.rule list
(** Every deny verdict across a whole response's queries. *)

val of_dsl : string -> (t, string) result
val of_xml : string -> (t, string) result
