(** The policy rule set compiled into a single decision structure.

    {!Engine} interprets the rule list: every check walks the rules
    until one matches. This module compiles the same rule set once —
    borrowing the NetKAT compiler's move of turning a policy term into
    a decision structure evaluated per packet — into a dispatch trie
    over the three selectors a query always carries concretely:

    {v
      cache name (normalised)  ->  operation  ->  controller id
    v}

    Each trie level dispatches on the concrete key and falls through to
    a wildcard branch; every reachable leaf is the ordinal-ordered
    array of exactly those rules whose cache/op/controller selectors
    are compatible with the path, so a check scans only the rules that
    could match. Leaf rules carry just the {e residual} predicate
    (trigger, destination, entry check) with entry globs pre-compiled
    to segment matchers ({!Pattern}); branches whose applicable rule
    subsets coincide share one physical subtree (FDD-style sharing —
    wildcard-heavy rule sets collapse to a handful of distinct leaves).

    {!check} is verdict-for-verdict equivalent to {!Engine.check} on
    the same rule list — global insertion-order first match, default
    allow, [Denied] carrying the {e physically} identical rule — an
    equivalence fuzzed continuously by the [jury_check] [policy]
    oracle family and pinned in [test_policy.ml]. Per-query cost is
    two hash lookups, an array index and a short residual scan:
    near-constant in total rule count (see the [policy-scale] bench).

    Compilation is pure: a [t] never observes later {!Engine.add_rule}
    calls. Use {!Engine.compiled} for a memoised view that recompiles
    exactly when the underlying rule set has grown. *)

type verdict = Allowed | Denied of Ast.rule
(** Same shape as {!Engine.verdict} (which re-exports this type). *)

type t

val of_rules : Ast.rule list -> t
(** Compile, treating list position as rule precedence (first rule
    wins). Cache selector keys are normalised at compile time, and
    {!check} normalises the query's cache key, so DSL/XML policies and
    hand-built queries cannot disagree on cache-name casing. *)

val check : t -> Ast.query -> verdict
(** First matching rule (lowest ordinal) decides; no match allows. *)

val check_all : t -> Ast.query list -> Ast.rule list
(** Every deny verdict across a whole response's queries. *)

(** Shape of the compiled structure, for benchmarks and docs. *)
type stats = {
  st_rules : int;  (** rules compiled *)
  st_cache_branches : int;  (** concrete cache names dispatched on *)
  st_leaves : int;  (** leaf references reachable from the trie *)
  st_distinct_leaves : int;  (** physical leaves after sharing *)
  st_max_leaf : int;  (** longest residual scan any query can see *)
}

val stats : t -> stats
