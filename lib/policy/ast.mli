(** JURY's policy language (paper Table 2 / Fig. 3).

    A policy constrains controller actions on the shared caches. Each
    rule selects on controller id, trigger nature, cache + operation,
    entry contents and side-effect destination; an [allow = false] rule
    raises an alarm when it matches. *)

type controller_sel = Any_controller | Controller_id of int
type trigger_sel = Any_trigger | Internal_only | External_only
type op_sel = Any_op | Op_is of Jury_store.Event.op
type destination_sel = Any_dest | Local_only | Remote_only

(** What must hold of the cache entry for the rule to match. *)
type entry_check =
  | Entry_any                                  (** the Fig. 3 ["*,*"] *)
  | Entry_glob of { key : Pattern.t; value : Pattern.t }
  | Flow_hierarchy_violation
      (** decoded FLOWSDB entry whose match violates the OF 1.0 field
          hierarchy — the policy that guards against the "ODL incorrect
          FLOW_MOD" T3 fault *)
  | Flow_drops_packets
      (** decoded FLOWSDB entry whose action list is a drop — guards
          against the "undesirable FLOW_MOD" scenario *)

type rule = {
  name : string;
  allow : bool;
  controller : controller_sel;
  trigger : trigger_sel;
  cache : string option;  (** normalised cache name; [None] = any *)
  operation : op_sel;
  entry : entry_check;
  destination : destination_sel;
}

val rule :
  ?name:string -> ?allow:bool -> ?controller:controller_sel ->
  ?trigger:trigger_sel -> ?cache:string -> ?operation:op_sel ->
  ?entry:entry_check -> ?destination:destination_sel -> unit -> rule
(** Builder with permissive defaults (match everything, [allow =
    false]). *)

(** The action being checked, as the validator sees it. *)
type query = {
  q_controller : int;
  q_trigger : [ `Internal | `External ];
  q_cache : string;
  q_op : Jury_store.Event.op;
  q_key : string;
  q_value : string;
  q_destination : [ `Local | `Remote ];
}

val rule_matches : rule -> query -> bool
(** Full selector match; cache names are compared case-insensitively
    (both sides normalised). *)

val rule_matches_sans_cache : rule -> query -> bool
(** Every selector except the cache name — for callers ({!Engine},
    {!Compiled}) that have already dispatched on the normalised cache. *)

val entry_matches : entry_check -> query -> bool
(** Just the entry check against the query's key/value. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_query : Format.formatter -> query -> unit
