(* Globs are compiled once into segment matchers: the text between
   '*'s becomes fixed-length segments ('?' stays a per-character
   wildcard), the first/last segments are anchored when the pattern
   does not start/end with '*', and the floating middle segments are
   located by a greedy leftmost scan. Greedy placement is complete for
   this pattern class because segments have fixed length: sliding a
   middle segment right can only shrink what remains for its
   successors. *)

type repr =
  | Exact of string
      (* no '*' anywhere; length-equal match with '?' wildcards *)
  | Star  (* nothing but '*'s: matches everything *)
  | Globs of {
      lead : string;  (* anchored prefix ("" when pattern starts with '*') *)
      mid : string array;  (* floating segments, in order *)
      trail : string;  (* anchored suffix ("" when pattern ends with '*') *)
      min_len : int;  (* total segment length: shortest possible subject *)
    }

type t = { source : string; repr : repr }

let analyse source =
  if not (String.contains source '*') then Exact source
  else
    let parts = String.split_on_char '*' source in
    let lead = List.hd parts and rest = List.tl parts in
    (* Last part is the anchored trail; empty interior parts are runs
       of consecutive stars and impose nothing. *)
    let rec split_trail acc = function
      | [] -> (List.rev acc, "")
      | [ last ] -> (List.rev acc, last)
      | p :: rest -> split_trail (if p = "" then acc else p :: acc) rest
    in
    let mid, trail = split_trail [] rest in
    if lead = "" && trail = "" && mid = [] then Star
    else
      let mid = Array.of_list mid in
      let min_len =
        String.length lead + String.length trail
        + Array.fold_left (fun acc m -> acc + String.length m) 0 mid
      in
      Globs { lead; mid; trail; min_len }

let compile source = { source; repr = analyse source }
let source t = t.source
let is_star t = t.source = "*"

(* [seg_at p s off]: does segment [p] match [s] starting at [off]?
   The caller guarantees [off + length p <= length s]. *)
let seg_at p s off =
  let n = String.length p in
  let rec go i =
    i = n || ((p.[i] = '?' || p.[i] = String.unsafe_get s (off + i)) && go (i + 1))
  in
  go 0

let matches t s =
  let slen = String.length s in
  match t.repr with
  | Star -> true
  | Exact p -> slen = String.length p && seg_at p s 0
  | Globs { lead; mid; trail; min_len } ->
      slen >= min_len
      && seg_at lead s 0
      && seg_at trail s (slen - String.length trail)
      &&
      (* Place each floating segment at its leftmost occurrence after
         the previous one, inside the window the anchors leave free. *)
      let limit = slen - String.length trail in
      let rec place i pos =
        if i = Array.length mid then true
        else
          let m = mid.(i) in
          let ml = String.length m in
          let rec find j =
            if j + ml > limit then false
            else if seg_at m s j then place (i + 1) (j + ml)
            else find (j + 1)
          in
          find pos
      in
      place 0 (String.length lead)
