(** Glob patterns for policy entry matching: [*] matches any run of
    characters, [?] any single character; everything else is literal.

    {!compile} pre-splits the glob into segment matchers (anchored
    prefix/suffix plus floating middle segments), so {!matches} runs
    without re-scanning the pattern text — the representation the
    policy compiler's leaves rely on. Semantics are pinned by a
    differential test against a naive recursive matcher
    (see [test_policy.ml]). *)

type t

val compile : string -> t
val matches : t -> string -> bool
val source : t -> string
val is_star : t -> bool
(** [true] for the pattern ["*"], letting the engine skip the match. *)
