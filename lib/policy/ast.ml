module Event = Jury_store.Event
module Values = Jury_controller.Values
module Of_match = Jury_openflow.Of_match
module Of_action = Jury_openflow.Of_action

type controller_sel = Any_controller | Controller_id of int
type trigger_sel = Any_trigger | Internal_only | External_only
type op_sel = Any_op | Op_is of Event.op
type destination_sel = Any_dest | Local_only | Remote_only

type entry_check =
  | Entry_any
  | Entry_glob of { key : Pattern.t; value : Pattern.t }
  | Flow_hierarchy_violation
  | Flow_drops_packets

type rule = {
  name : string;
  allow : bool;
  controller : controller_sel;
  trigger : trigger_sel;
  cache : string option;
  operation : op_sel;
  entry : entry_check;
  destination : destination_sel;
}

let rule ?(name = "policy") ?(allow = false) ?(controller = Any_controller)
    ?(trigger = Any_trigger) ?cache ?(operation = Any_op)
    ?(entry = Entry_any) ?(destination = Any_dest) () =
  { name;
    allow;
    controller;
    trigger;
    cache = Option.map Jury_store.Cache_names.normalize cache;
    operation;
    entry;
    destination }

type query = {
  q_controller : int;
  q_trigger : [ `Internal | `External ];
  q_cache : string;
  q_op : Event.op;
  q_key : string;
  q_value : string;
  q_destination : [ `Local | `Remote ];
}

let entry_matches check q =
  match check with
  | Entry_any -> true
  | Entry_glob { key; value } ->
      Pattern.matches key q.q_key && Pattern.matches value q.q_value
  | Flow_hierarchy_violation -> (
      match Values.Flow.parse q.q_value with
      | Some fm -> not (Of_match.hierarchy_ok fm.Jury_openflow.Of_message.fm_match)
      | None -> false)
  | Flow_drops_packets -> (
      match Values.Flow.parse q.q_value with
      | Some fm -> Of_action.is_drop fm.Jury_openflow.Of_message.actions
      | None -> false)

(* Everything but the cache-name selector. The engine dispatches on
   the (normalised) cache name before rule matching, so re-testing it
   per rule would both be redundant and reintroduce the case-
   sensitivity it just removed. *)
let rule_matches_sans_cache r q =
  (match r.controller with
  | Any_controller -> true
  | Controller_id id -> id = q.q_controller)
  && (match r.trigger with
     | Any_trigger -> true
     | Internal_only -> q.q_trigger = `Internal
     | External_only -> q.q_trigger = `External)
  && (match r.operation with Any_op -> true | Op_is op -> op = q.q_op)
  && (match r.destination with
     | Any_dest -> true
     | Local_only -> q.q_destination = `Local
     | Remote_only -> q.q_destination = `Remote)
  && entry_matches r.entry q

let rule_matches r q =
  (match r.cache with
  | None -> true
  | Some c ->
      Jury_store.Cache_names.normalize c
      = Jury_store.Cache_names.normalize q.q_cache)
  && rule_matches_sans_cache r q

let pp_query fmt q =
  Format.fprintf fmt "query[ctrl=%d trig=%s cache=%s op=%s %s=%S dest=%s]"
    q.q_controller
    (match q.q_trigger with `Internal -> "internal" | `External -> "external")
    q.q_cache
    (Event.op_to_string q.q_op)
    q.q_key q.q_value
    (match q.q_destination with `Local -> "local" | `Remote -> "remote")

let pp_rule fmt r =
  Format.fprintf fmt "%s[%s ctrl=%s trig=%s cache=%s op=%s dest=%s entry=%s]"
    r.name
    (if r.allow then "allow" else "deny")
    (match r.controller with
    | Any_controller -> "*"
    | Controller_id id -> string_of_int id)
    (match r.trigger with
    | Any_trigger -> "*"
    | Internal_only -> "internal"
    | External_only -> "external")
    (Option.value r.cache ~default:"*")
    (match r.operation with
    | Any_op -> "*"
    | Op_is op -> Event.op_to_string op)
    (match r.destination with
    | Any_dest -> "*"
    | Local_only -> "local"
    | Remote_only -> "remote")
    (match r.entry with
    | Entry_any -> "*,*"
    | Entry_glob { key; value } ->
        Printf.sprintf "%s,%s" (Pattern.source key) (Pattern.source value)
    | Flow_hierarchy_violation -> "flow-hierarchy-violation"
    | Flow_drops_packets -> "flow-drops-packets")
