module Names = Jury_store.Cache_names

(* Rules are tagged with their insertion ordinal so first-match is
   global insertion order even though storage is bucketed by cache
   name. All three stores keep newest-first lists: add_rule is a cons
   (policy load is O(n), not the historical O(n^2) rebuild) and [rules]
   pays one reversal when asked. *)
type t = {
  mutable rev_ordered : (int * Ast.rule) list;  (* newest first *)
  mutable count : int;
  by_cache : (string, (int * Ast.rule) list ref) Hashtbl.t;
      (* keyed on normalised cache names, newest first *)
  any_cache : (int * Ast.rule) list ref;  (* newest first *)
  mutable memo : (int * Compiled.t) option;
      (* compiled view stamped with the generation it was built at *)
}

let add_rule t rule =
  let ord = t.count in
  t.count <- ord + 1;
  t.rev_ordered <- (ord, rule) :: t.rev_ordered;
  t.memo <- None;
  match rule.Ast.cache with
  | None -> t.any_cache := (ord, rule) :: !(t.any_cache)
  | Some cache -> (
      let key = Names.normalize cache in
      match Hashtbl.find_opt t.by_cache key with
      | Some bucket -> bucket := (ord, rule) :: !bucket
      | None -> Hashtbl.add t.by_cache key (ref [ (ord, rule) ]))

let create rules =
  let t =
    { rev_ordered = []; count = 0; by_cache = Hashtbl.create 8;
      any_cache = ref []; memo = None }
  in
  List.iter (add_rule t) rules;
  t

let rules t = List.rev_map snd t.rev_ordered
let rule_count t = t.count
let generation t = t.count

let compiled t =
  match t.memo with
  | Some (gen, c) when gen = t.count -> c
  | _ ->
      let c = Compiled.of_rules (rules t) in
      t.memo <- Some (t.count, c);
      c

type verdict = Compiled.verdict = Allowed | Denied of Ast.rule

let check t (q : Ast.query) =
  (* Normalise the cache key once so hand-built queries and DSL/XML
     policies cannot disagree on casing; the rules' own cache selectors
     were normalised into the bucket keys at add_rule. *)
  let q = { q with Ast.q_cache = Names.normalize q.Ast.q_cache } in
  let bucket =
    match Hashtbl.find_opt t.by_cache q.Ast.q_cache with
    | Some b -> !b
    | None -> []
  in
  (* The first matching rule in global insertion order decides: scan
     both the cache-specific bucket and the cache-wildcard rules and
     keep the lowest-ordinal match. *)
  let best acc lst =
    List.fold_left
      (fun acc ((ord, rule) as slot) ->
        match acc with
        | Some (o, _) when o <= ord -> acc
        | _ -> if Ast.rule_matches_sans_cache rule q then Some slot else acc)
      acc lst
  in
  match best (best None bucket) !(t.any_cache) with
  | Some (_, rule) -> if rule.Ast.allow then Allowed else Denied rule
  | None -> Allowed

let check_all t queries =
  List.filter_map
    (fun q -> match check t q with Allowed -> None | Denied r -> Some r)
    queries

let of_dsl src = Result.map create (Parse.dsl src)
let of_xml src = Result.map create (Parse.xml src)
