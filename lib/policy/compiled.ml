module Event = Jury_store.Event
module Names = Jury_store.Cache_names

type verdict = Allowed | Denied of Ast.rule

(* A rule as the trie's leaves see it: the selectors the dispatch path
   has already satisfied (cache, operation, controller) are gone; what
   remains is the residual predicate and the ordinal that decides
   precedence. [src] is the rule as the user wrote it, returned
   verbatim in [Denied] so verdicts are physically identical to the
   interpreter's. *)
type crule = {
  ord : int;
  allow : bool;
  trigger : Ast.trigger_sel;
  destination : Ast.destination_sel;
  entry : Ast.entry_check;  (* globs inside are pre-compiled segment matchers *)
  src : Ast.rule;
}

type leaf = crule array

(* Controller dispatch: concrete ids present in the rule subset, plus
   the fallthrough leaf holding only controller-wildcard rules. *)
type ctrl_node = { by_ctrl : (int, leaf) Hashtbl.t; ctrl_any : leaf }

(* Operation dispatch. Queries always carry a concrete op, so three
   branches (indexed by [op_index]) cover every lookup; each branch
   already folds in the op-wildcard rules. *)
type op_node = ctrl_node array

type stats = {
  st_rules : int;
  st_cache_branches : int;
  st_leaves : int;  (* leaf references reachable from the trie *)
  st_distinct_leaves : int;  (* after FDD-style sharing *)
  st_max_leaf : int;  (* longest residual scan any query can see *)
}

type t = {
  by_cache : (string, op_node) Hashtbl.t;  (* keyed on normalised names *)
  cache_any : op_node;
  stats : stats;
}

let op_index = function Event.Create -> 0 | Event.Update -> 1 | Event.Delete -> 2
let all_ops = [| Event.Create; Event.Update; Event.Delete |]

(* --- construction -------------------------------------------------- *)

(* Subsets are identified by their ordinal sequence: two branches whose
   applicable rules coincide share one physical subtree, however they
   were reached (the FDD trick — wildcard-heavy rule sets collapse to a
   handful of distinct leaves). *)
let subset_key subset =
  String.concat "." (List.map (fun (ord, _) -> string_of_int ord) subset)

let memo tbl subset build =
  let key = subset_key subset in
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = build subset in
      Hashtbl.add tbl key v;
      v

let of_rules rules =
  let tagged = List.mapi (fun ord r -> (ord, r)) rules in
  let leaf_memo : (string, leaf) Hashtbl.t = Hashtbl.create 16 in
  let ctrl_memo : (string, ctrl_node) Hashtbl.t = Hashtbl.create 16 in
  let op_memo : (string, op_node) Hashtbl.t = Hashtbl.create 16 in
  let mk_leaf subset =
    memo leaf_memo subset (fun subset ->
        Array.of_list
          (List.map
             (fun (ord, (r : Ast.rule)) ->
               { ord; allow = r.Ast.allow; trigger = r.Ast.trigger;
                 destination = r.Ast.destination; entry = r.Ast.entry;
                 src = r })
             subset))
  in
  let mk_ctrl subset =
    memo ctrl_memo subset (fun subset ->
        let ids =
          List.sort_uniq compare
            (List.filter_map
               (fun (_, (r : Ast.rule)) ->
                 match r.Ast.controller with
                 | Ast.Controller_id id -> Some id
                 | Ast.Any_controller -> None)
               subset)
        in
        let by_ctrl = Hashtbl.create (max 1 (List.length ids)) in
        List.iter
          (fun id ->
            Hashtbl.add by_ctrl id
              (mk_leaf
                 (List.filter
                    (fun (_, (r : Ast.rule)) ->
                      match r.Ast.controller with
                      | Ast.Any_controller -> true
                      | Ast.Controller_id i -> i = id)
                    subset)))
          ids;
        { by_ctrl;
          ctrl_any =
            mk_leaf
              (List.filter
                 (fun (_, (r : Ast.rule)) ->
                   r.Ast.controller = Ast.Any_controller)
                 subset) })
  in
  let mk_op subset =
    memo op_memo subset (fun subset ->
        Array.map
          (fun op ->
            mk_ctrl
              (List.filter
                 (fun (_, (r : Ast.rule)) ->
                   match r.Ast.operation with
                   | Ast.Any_op -> true
                   | Ast.Op_is o -> o = op)
                 subset))
          all_ops)
  in
  let caches =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, (r : Ast.rule)) -> Option.map Names.normalize r.Ast.cache)
         tagged)
  in
  let by_cache = Hashtbl.create (max 1 (List.length caches)) in
  List.iter
    (fun c ->
      Hashtbl.add by_cache c
        (mk_op
           (List.filter
              (fun (_, (r : Ast.rule)) ->
                match r.Ast.cache with
                | None -> true
                | Some rc -> Names.normalize rc = c)
              tagged)))
    caches;
  let cache_any =
    mk_op (List.filter (fun (_, (r : Ast.rule)) -> r.Ast.cache = None) tagged)
  in
  let stats =
    let distinct = Hashtbl.length leaf_memo in
    let refs = ref 0 and max_leaf = ref 0 in
    Hashtbl.iter
      (fun _ (l : leaf) -> max_leaf := max !max_leaf (Array.length l))
      leaf_memo;
    let count_ctrl (c : ctrl_node) =
      refs := !refs + 1 + Hashtbl.length c.by_ctrl
    in
    let count_op (o : op_node) = Array.iter count_ctrl o in
    Hashtbl.iter (fun _ o -> count_op o) by_cache;
    count_op cache_any;
    { st_rules = List.length rules;
      st_cache_branches = Hashtbl.length by_cache;
      st_leaves = !refs;
      st_distinct_leaves = distinct;
      st_max_leaf = !max_leaf }
  in
  { by_cache; cache_any; stats }

let stats t = t.stats

(* --- lookup -------------------------------------------------------- *)

let residual_matches (c : crule) (q : Ast.query) =
  (match c.trigger with
  | Ast.Any_trigger -> true
  | Ast.Internal_only -> q.Ast.q_trigger = `Internal
  | Ast.External_only -> q.Ast.q_trigger = `External)
  && (match c.destination with
     | Ast.Any_dest -> true
     | Ast.Local_only -> q.Ast.q_destination = `Local
     | Ast.Remote_only -> q.Ast.q_destination = `Remote)
  && Ast.entry_matches c.entry q

let leaf_check (leaf : leaf) q =
  let n = Array.length leaf in
  let rec go i =
    if i = n then Allowed
    else
      let c = Array.unsafe_get leaf i in
      if residual_matches c q then
        if c.allow then Allowed else Denied c.src
      else go (i + 1)
  in
  go 0

let check t (q : Ast.query) =
  (* The residual predicates never look at [q_cache], so normalising
     just the dispatch key suffices — the query record is not
     rebuilt. *)
  let opn =
    match Hashtbl.find_opt t.by_cache (Names.normalize q.Ast.q_cache) with
    | Some n -> n
    | None -> t.cache_any
  in
  let cn = opn.(op_index q.Ast.q_op) in
  let leaf =
    match Hashtbl.find_opt cn.by_ctrl q.Ast.q_controller with
    | Some l -> l
    | None -> cn.ctrl_any
  in
  leaf_check leaf q

let check_all t queries =
  List.filter_map
    (fun q -> match check t q with Allowed -> None | Denied r -> Some r)
    queries
