(* Entry point aggregating every suite; `dune runtest` runs this. *)

let () =
  Alcotest.run "jury-reproduction"
    [ ("sim", Test_sim.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("packet", Test_packet.suite);
      ("openflow", Test_openflow.suite);
      ("topo", Test_topo.suite);
      ("store", Test_store.suite);
      ("net", Test_net.suite);
      ("controller", Test_controller.suite);
      ("policy", Test_policy.suite);
      ("jury", Test_jury.suite);
      ("config", Test_config.suite);
      ("faults", Test_faults.suite);
      ("workload", Test_workload.suite);
      ("experiments", Test_experiments.suite);
      ("par", Test_par.suite);
      ("check", Test_check.suite);
      ("fuzz", Test_fuzz.suite);
      ("mc", Test_mc.suite) ]
