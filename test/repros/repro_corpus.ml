(* The pinned repro corpus.

   Each entry is a shrunk case once produced by the fuzz harness
   against a buggy validator; re-running the full oracle battery over
   it must stay green. To append one, paste the "corpus entry" block a
   `jury_cli check` failure report prints (it is already in this
   format) and name the bug it caught.

   The seed entries below come from the harness's mutation-sensitivity
   demo: three deliberate validator bugs — a batch path dropping each
   bucket's first response, a validation timeout skewed by the
   trigger's shard index, and Ok_valid verdicts counted but never
   recorded — were each caught and minimised by the named oracle. *)

type entry = { name : string; oracle : string; case : Jury_check.Case.t }

let entries : entry list ref = ref []

let add ~name ~oracle case = entries := { name; oracle; case } :: !entries

let all () = List.rev !entries

(* batch-path off-by-one: deliver_batch dropped the first response of
   every shard bucket; per-event vs one-batch verdicts diverged. *)
let () =
  add ~name:"seed-42" ~oracle:"batch-equivalence"
    { Jury_check.Case.case_seed = 42;
      topo = Jury_check.Case.Linear;
      switches = 2;
      hosts_per_switch = 1;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Mix;
      rate = 88.944561029176867;
      duration_ms = 100;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }

(* shard-skewed timer: the validation timeout gained the trigger's
   shard index in nanoseconds, so shards=1 and shards=4 decided
   timed-out triggers at different instants. *)
let () =
  add ~name:"seed-44" ~oracle:"shard-independence"
    { Jury_check.Case.case_seed = 44;
      topo = Jury_check.Case.Linear;
      switches = 1;
      hosts_per_switch = 2;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Blast;
      rate = 86.0;
      duration_ms = 100;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }

(* dropped verdicts: Ok_valid decisions bumped the decided counter but
   never entered the verdict list, breaking count conservation. *)
let () =
  add ~name:"seed-43" ~oracle:"verdict-conservation"
    { Jury_check.Case.case_seed = 43;
      topo = Jury_check.Case.Linear;
      switches = 1;
      hosts_per_switch = 2;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Mix;
      rate = 54.0;
      duration_ms = 110;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }

(* The guided-fuzzing mutation demo: two stateful validator bugs that
   only the mutation-reachable fault vocabulary can trigger, so 200
   blind cases (seeds 42..241) pass while `check --fuzz` catches and
   shrinks both. Pinned from the minimised failures. *)

(* stale rejoin snapshot: every second crash-rejoin state transfer
   left the node's consensus snapshot pristine instead of adopting the
   resync source's, so replaying a case with a Rejoin fault diverged
   (ok verdicts flipped to ok-unverifiable on the second run only).
   Lineage: seed=24 fault-inject@280440992 workload-flip@91026226. *)
let () =
  add ~name:"fuzz-rejoin-stale-snapshot" ~oracle:"replay-determinism"
    { Jury_check.Case.case_seed = 24;
      topo = Jury_check.Case.Linear;
      switches = 1;
      hosts_per_switch = 1;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Joins;
      rate = 190.23927925819103;
      duration_ms = 100;
      faults =
        [ { Jury_check.Case.at_ms = 78;
            action = Jury_check.Case.Rejoin { node = 1 } } ];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }

(* policy verdicts without detection samples: detection_times_ms
   silently skipped Policy_violation verdicts, so a mid-run add_rule
   (policy churn) broke decided-count vs detection-sample conservation.
   Lineage: seed=19 validator-churn@960652544 fault-inject@759014654
   fault-drop@773348863. *)
let () =
  add ~name:"fuzz-policy-detection-skip" ~oracle:"verdict-conservation"
    { Jury_check.Case.case_seed = 19;
      topo = Jury_check.Case.Linear;
      switches = 2;
      hosts_per_switch = 1;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Connections;
      rate = 84.636758189464658;
      duration_ms = 145;
      faults =
        [ { Jury_check.Case.at_ms = 170;
            action =
              Jury_check.Case.Add_rule
                { rule =
                    "deny name=fuzz-external-flowsdb trigger=external \
                     cache=FLOWSDB" } } ];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }
