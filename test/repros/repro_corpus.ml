(* The pinned repro corpus.

   Each entry is a shrunk case once produced by the fuzz harness
   against a buggy validator; re-running the full oracle battery over
   it must stay green. To append one, paste the "corpus entry" block a
   `jury_cli check` failure report prints (it is already in this
   format) and name the bug it caught.

   The seed entries below come from the harness's mutation-sensitivity
   demo: three deliberate validator bugs — a batch path dropping each
   bucket's first response, a validation timeout skewed by the
   trigger's shard index, and Ok_valid verdicts counted but never
   recorded — were each caught and minimised by the named oracle. *)

type entry = { name : string; oracle : string; case : Jury_check.Case.t }

let entries : entry list ref = ref []

let add ~name ~oracle case = entries := { name; oracle; case } :: !entries

let all () = List.rev !entries

(* batch-path off-by-one: deliver_batch dropped the first response of
   every shard bucket; per-event vs one-batch verdicts diverged. *)
let () =
  add ~name:"seed-42" ~oracle:"batch-equivalence"
    { Jury_check.Case.case_seed = 42;
      topo = Jury_check.Case.Linear;
      switches = 2;
      hosts_per_switch = 1;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Mix;
      rate = 88.944561029176867;
      duration_ms = 100;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }

(* shard-skewed timer: the validation timeout gained the trigger's
   shard index in nanoseconds, so shards=1 and shards=4 decided
   timed-out triggers at different instants. *)
let () =
  add ~name:"seed-44" ~oracle:"shard-independence"
    { Jury_check.Case.case_seed = 44;
      topo = Jury_check.Case.Linear;
      switches = 1;
      hosts_per_switch = 2;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Blast;
      rate = 86.0;
      duration_ms = 100;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }

(* dropped verdicts: Ok_valid decisions bumped the decided counter but
   never entered the verdict list, breaking count conservation. *)
let () =
  add ~name:"seed-43" ~oracle:"verdict-conservation"
    { Jury_check.Case.case_seed = 43;
      topo = Jury_check.Case.Linear;
      switches = 1;
      hosts_per_switch = 2;
      nodes = 3;
      k = 1;
      odl = false;
      workload = Jury_check.Case.Mix;
      rate = 54.0;
      duration_ms = 110;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 5 }
