(* Runs the full oracle battery over every pinned repro. A corpus case
   failing here means a once-fixed bug (or a fresh one) is back. *)

let check (e : Repro_corpus.entry) () =
  match Jury_check.Oracle.check_case e.Repro_corpus.case with
  | [] -> ()
  | violations ->
      Alcotest.failf "%s (pinned for %s): %s" e.Repro_corpus.name
        e.Repro_corpus.oracle
        (String.concat "; "
           (List.map
              (fun ((o : Jury_check.Oracle.t), msg) ->
                Printf.sprintf "%s: %s" o.Jury_check.Oracle.name msg)
              violations))

let () =
  Alcotest.run "jury-repros"
    [ ( "corpus",
        List.map
          (fun (e : Repro_corpus.entry) ->
            Alcotest.test_case
              (e.Repro_corpus.name ^ ":" ^ e.Repro_corpus.oracle)
              `Slow (check e))
          (Repro_corpus.all ()) ) ]
