(* Runs the full oracle battery over every pinned repro, and replays
   every pinned schedule trace. A corpus case failing here means a
   once-fixed bug (or a fresh one) is back. *)

let check (e : Repro_corpus.entry) () =
  match Jury_check.Registry.check_case e.Repro_corpus.case with
  | [] -> ()
  | violations ->
      Alcotest.failf "%s (pinned for %s): %s" e.Repro_corpus.name
        e.Repro_corpus.oracle
        (String.concat "; "
           (List.map
              (fun ((o : Jury_check.Oracle.t), msg) ->
                Printf.sprintf "%s: %s" o.Jury_check.Oracle.name msg)
              violations))

(* An mc entry pins a schedule once inequivalent to the FIFO reference:
   replaying it must now agree (schedule-blind) and keep the whole
   battery green on that exact interleaving. *)
let check_mc (e : Mc_corpus.entry) () =
  match Jury_mc.Trace.of_string e.Mc_corpus.trace with
  | Error msg -> Alcotest.failf "%s: bad trace: %s" e.Mc_corpus.name msg
  | Ok trace -> (
      match
        Jury_mc.Explorer.replay
          ~oracles:(Jury_check.Registry.all ())
          e.Mc_corpus.case trace
      with
      | _, None -> ()
      | _, Some d ->
          Alcotest.failf "%s (pinned for: %s): %s" e.Mc_corpus.name
            e.Mc_corpus.bug
            (Jury_mc.Explorer.describe_divergence d))

let () =
  Alcotest.run "jury-repros"
    [ ( "corpus",
        List.map
          (fun (e : Repro_corpus.entry) ->
            Alcotest.test_case
              (e.Repro_corpus.name ^ ":" ^ e.Repro_corpus.oracle)
              `Slow (check e))
          (Repro_corpus.all ()) );
      ( "mc",
        List.map
          (fun (e : Mc_corpus.entry) ->
            Alcotest.test_case e.Mc_corpus.name `Slow (check_mc e))
          (Mc_corpus.all ()) ) ]
