(* Pinned schedule-exploration repros.

   Each entry is a (case, choice trace) pair once produced by
   `jury_cli mc --minimise` against a buggy validator: on that tree the
   traced schedule's schedule-blind projection diverged from the FIFO
   reference.  On the current tree replaying the trace must agree with
   the reference and keep the full oracle battery green.  To append
   one, paste the case literal and trace `mc --minimise` prints and
   name the bug it caught.

   The seed entry comes from the explorer's mutation-sensitivity demo
   (see mc_last_responder.patch in this directory): the validator's
   `finish` was changed to attribute the verdict to
   `List.hd p.responses` — but that list is newest-first, so the alarm
   blamed the LAST responder, which depends on the arrival order of
   simultaneously-delivered quorum responses.  200 sampled fuzz cases
   stayed green (every sampled schedule used the same FIFO tie-break),
   while `jury_cli mc --switches 1 --triggers 1 --nodes 3` caught it
   in under a hundred schedules and minimised the witness to the
   8-choice trace below. *)

type entry =
  { name : string;
    bug : string;
    trace : string;
    case : Jury_check.Case.t }

let entries : entry list ref = ref []

let add ~name ~bug ~trace case = entries := { name; bug; trace; case } :: !entries

let all () = List.rev !entries

let () =
  add ~name:"mc-last-responder" ~bug:"verdict attributed to last responder"
    ~trace:"0.0.1.0.0.0.0.1"
    { Jury_check.Case.case_seed = 11;
      topo = Jury_check.Case.Linear;
      switches = 1;
      hosts_per_switch = 1;
      nodes = 3;
      k = 2;
      odl = false;
      workload = Jury_check.Case.Joins;
      rate = 25.0;
      duration_ms = 40;
      faults = [];
      drop = 0.0;
      duplicate = 0.0;
      jitter_us = 0.0;
      retries = 0;
      degraded_quorum = None;
      shards = 1;
      max_inflight = None;
      batch_us = None;
      triggers = 1 }
