(* Tests for the Jury_config builder facade and the sharded/bounded
   validator state behind it: facade defaults must reproduce the
   literal seed record byte-for-byte, shard count must not change
   verdicts, max_inflight must shed load as Overload verdicts, and the
   process-wide counters must support per-run deltas. *)

open Jury_sim
module Types = Jury_controller.Types
module Validator = Jury.Validator
module Response = Jury.Response
module Snapshot = Jury.Snapshot

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build, converge and drive a small benign cluster with [deployment_of]
   supplying the JURY deployment; returns verdict statistics plus the
   exact detection-time samples, which double as a byte-for-byte
   fingerprint of the run. *)
let drive deployment_of =
  let engine = Engine.create ~seed:42 () in
  let plan = Jury_topo.Builder.linear ~switches:8 ~hosts_per_switch:1 in
  let network = Jury_net.Network.create engine plan () in
  let cluster =
    Jury_controller.Cluster.create engine
      ~profile:Jury_controller.Profile.onos ~nodes:5 ~network ()
  in
  let deployment = deployment_of cluster in
  Jury_controller.Cluster.converge cluster;
  List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  let rng = Rng.split (Engine.rng engine) in
  Jury_workload.Flows.controlled_mix network ~rng ~packet_in_rate:800.
    ~duration:(Time.sec 2);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 4));
  let v = Jury.Deployment.validator deployment in
  ( Validator.decided_count v,
    Validator.fault_count v,
    Array.to_list (Validator.detection_times_ms v),
    v )

(* The seed deployment as a literal record — every default spelled out.
   Must stay in sync with what [Jury_config.make ()] builds; the test
   below pins the two together. *)
let seed_record () =
  { Jury.Deployment.k = 2;
    timeout = Time.ms 150;
    adaptive_timeout = false;
    state_aware = true;
    nondet_rule = true;
    random_secondaries = true;
    policies = Jury_policy.Engine.create [];
    validator_latency = Time.us 120;
    validator_jitter_us = 60.;
    replication_latency = Time.us 200;
    replication_jitter_us = 80.;
    chatter_cost = Time.us 13;
    chatter_bytes = 96;
    encapsulation = false;
    channel = Jury.Channel.reliable;
    retransmit = None;
    degraded_quorum = None;
    shards = 1;
    max_inflight = None;
    batch_window = None;
    pipeline_jobs = 1;
    election = None }

let test_facade_defaults_match_literal_record () =
  let facade =
    drive (fun cluster ->
        Jury.Jury_config.install cluster (Jury.Jury_config.make ()))
  in
  let literal =
    drive (fun cluster -> Jury.Deployment.install cluster (seed_record ()))
  in
  let (fd, ff, ft, _), (ld, lf, lt, _) = (facade, literal) in
  check_int "decided" ld fd;
  check_int "faults" lf ff;
  Alcotest.(check (list (float 0.))) "detection times byte-for-byte" lt ft

let test_shards_do_not_change_verdicts () =
  let run shards =
    drive (fun cluster ->
        Jury.Jury_config.install cluster (Jury.Jury_config.make ~shards ()))
  in
  let d1, f1, t1, v1 = run 1 in
  let d4, f4, t4, v4 = run 4 in
  check_int "shard_count normalised" 4 (Validator.shard_count v4);
  check_int "shard_count seed" 1 (Validator.shard_count v1);
  check_int "decided identical" d1 d4;
  check_int "faults identical" f1 f4;
  Alcotest.(check (list (float 0.))) "detection times identical" t1 t4

let test_batching_fans_out_across_shards () =
  let run shards =
    drive (fun cluster ->
        Jury.Jury_config.install cluster
          (Jury.Jury_config.make ~shards ~batch:(Time.us 200) ()))
  in
  let d1, f1, _, v1 = run 1 in
  let d4, f4, _, v4 = run 4 in
  check_int "decided identical under batching" d1 d4;
  check_int "faults identical under batching" f1 f4;
  check_bool "batches delivered" true (Validator.batch_count v4 > 0);
  check_int "every response batched"
    (Validator.batched_response_count v1)
    (Validator.batched_response_count v4);
  let busy_shards =
    Validator.shard_stats v4
    |> List.filter (fun (s : Validator.shard_stats) ->
           s.Validator.shard_batches > 0)
    |> List.length
  in
  check_bool "batches spread over several shards" true (busy_shards > 1)

(* --- bare-validator paths: overload shedding, batch equivalence --- *)

let register v ~serial =
  Validator.register_external v
    ~taint:(Types.Taint.external_trigger ~primary:0 ~serial)
    ~at:Time.zero ~primary:0 ~secondaries:[ 1; 2 ]

let bare_validator ?shards ?max_inflight () =
  let engine = Engine.create () in
  let cfg =
    Jury.Jury_config.validator
      ~ack_peers_of:(fun _ -> [])
      (Jury.Jury_config.make ~k:2 ~timeout:(Time.ms 100) ?shards
         ?max_inflight ())
  in
  (engine, Validator.create engine cfg)

let test_max_inflight_sheds_as_overload () =
  let _, v = bare_validator ~max_inflight:8 () in
  for serial = 0 to 39 do
    register v ~serial
  done;
  check_bool "inflight bounded near the high-water mark" true
    (Validator.pending_count v <= 16);
  check_bool "overloads recorded" true (Validator.overload_count v > 0);
  let overload_verdicts =
    Validator.verdicts v
    |> List.filter (fun (a : Jury.Alarm.t) ->
           a.Jury.Alarm.verdict = Jury.Alarm.Overload)
  in
  check_int "counter matches Overload verdicts"
    (Validator.overload_count v)
    (List.length overload_verdicts);
  check_int "everything is either pending, decided ok, or shed" 40
    (Validator.pending_count v + Validator.decided_count v)

let responses n =
  List.concat_map
    (fun serial ->
      let taint = Types.Taint.external_trigger ~primary:0 ~serial in
      List.map
        (fun controller ->
          { Response.controller;
            taint;
            snapshot = Snapshot.pristine;
            sent_at = Time.zero;
            term = 0;
            body =
              Response.Execution
                { role = (if controller = 0 then `Primary else `Secondary);
                  actions = [] } })
        [ 0; 1; 2 ])
    (List.init n (fun i -> i))

let test_deliver_batch_matches_per_event () =
  let run ~batched ~shards =
    let _, v = bare_validator ~shards () in
    for serial = 0 to 9 do
      register v ~serial
    done;
    let rs = responses 10 in
    if batched then Validator.deliver_batch v rs
    else List.iter (Validator.deliver v) rs;
    v
  in
  let a = run ~batched:false ~shards:1 in
  let b = run ~batched:true ~shards:1 in
  let c = run ~batched:true ~shards:4 in
  check_int "per-event decided" 10 (Validator.decided_count a);
  check_int "batched decided" (Validator.decided_count a)
    (Validator.decided_count b);
  check_int "batched sharded decided" (Validator.decided_count a)
    (Validator.decided_count c);
  check_int "no batches on the per-event path" 0 (Validator.batch_count a);
  check_int "one batch per non-empty shard, single shard" 1
    (Validator.batch_count b);
  check_int "all responses counted as batched" 30
    (Validator.batched_response_count b);
  check_bool "sharded batch split into per-shard sub-batches" true
    (Validator.batch_count c > 1)

let test_process_counters_support_per_run_deltas () =
  (* The bench's --json report computes per-experiment deltas of the
     process-wide counters; two back-to-back runs must each account for
     exactly their own work. *)
  let run_once () =
    let _, v = bare_validator () in
    for serial = 0 to 4 do
      register v ~serial
    done;
    Validator.deliver_batch v (responses 5);
    (Validator.decided_count v, Validator.batch_count v)
  in
  let d0 = Validator.total_decided () and b0 = Validator.total_batches () in
  let decided1, batches1 = run_once () in
  let d1 = Validator.total_decided () and b1 = Validator.total_batches () in
  check_int "first run's decided delta" decided1 (d1 - d0);
  check_int "first run's batch delta" batches1 (b1 - b0);
  let decided2, batches2 = run_once () in
  let d2 = Validator.total_decided () and b2 = Validator.total_batches () in
  check_int "second run's decided delta" decided2 (d2 - d1);
  check_int "second run's batch delta" batches2 (b2 - b1)

let test_obs_bridge_exports_shard_counters () =
  let _, v = bare_validator ~shards:2 () in
  for serial = 0 to 3 do
    register v ~serial
  done;
  Validator.deliver_batch v (responses 4);
  let metrics = Jury_sim.Metrics.create () in
  Jury.Obs_bridge.record_validator_shards v metrics;
  check_int "per-shard decided counters sum to the total"
    (Validator.decided_count v)
    (Jury_sim.Metrics.count metrics "validator/shard0/decided"
    + Jury_sim.Metrics.count metrics "validator/shard1/decided");
  check_int "per-shard batch counters sum to the total"
    (Validator.batch_count v)
    (Jury_sim.Metrics.count metrics "validator/shard0/batches"
    + Jury_sim.Metrics.count metrics "validator/shard1/batches");
  check_int "epoch gauge exported" (Validator.current_epoch v)
    (Jury_sim.Metrics.count metrics "validator/epoch")

let test_make_validates () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "negative k rejected" true
    (raises (fun () -> Jury.Jury_config.make ~k:(-1) ()));
  check_bool "channel and drop together rejected" true
    (raises (fun () ->
         Jury.Jury_config.make ~channel:Jury.Channel.reliable ~drop:0.1 ()));
  check_bool "zero max_inflight rejected" true
    (raises (fun () -> Jury.Jury_config.make ~max_inflight:0 ()));
  check_bool "shard hint rounded up" true
    (Jury.Jury_config.shards (Jury.Jury_config.make ~shards:3 ()) = 4)

let suite =
  [ Alcotest.test_case "facade defaults = literal record" `Slow
      test_facade_defaults_match_literal_record;
    Alcotest.test_case "shards=1 vs 4 verdict-identical" `Slow
      test_shards_do_not_change_verdicts;
    Alcotest.test_case "batching fans out across shards" `Slow
      test_batching_fans_out_across_shards;
    Alcotest.test_case "max_inflight sheds as Overload" `Quick
      test_max_inflight_sheds_as_overload;
    Alcotest.test_case "deliver_batch = per-event deliver" `Quick
      test_deliver_batch_matches_per_event;
    Alcotest.test_case "process counters give per-run deltas" `Quick
      test_process_counters_support_per_run_deltas;
    Alcotest.test_case "obs bridge exports shard counters" `Quick
      test_obs_bridge_exports_shard_counters;
    Alcotest.test_case "make validates its arguments" `Quick
      test_make_validates ]
