(* The fuzz harness itself: generator determinism, shrinker soundness,
   oracle plumbing, and the process-wide-counter hygiene the harness
   depends on (every fuzz case must see clean per-run deltas whatever
   ran before it in the process). *)

open Jury_check
module Validator = Jury.Validator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- generator --- *)

let test_generate_deterministic () =
  let a = Case.generate ~seed:7 and b = Case.generate ~seed:7 in
  check_bool "same seed, same case" true (Case.equal a b);
  let c = Case.generate ~seed:8 in
  check_bool "different seed, different case" false (Case.equal a c)

let test_generate_valid () =
  (* Every generated case must denote a buildable configuration: the
     facade validates all knobs, and the topology/workload combination
     must satisfy the builders' floors. *)
  for seed = 0 to 199 do
    let c = Case.generate ~seed in
    ignore (Case.jury_config c);
    check_bool "ring has >= 3 switches" true
      (c.Case.topo <> Case.Ring || c.Case.switches >= 3);
    check_bool "blast has 2 hosts on a switch" true
      (c.Case.workload <> Case.Blast || c.Case.hosts_per_switch >= 2);
    let hosts =
      if c.Case.topo = Case.Single then max 2 c.Case.switches
      else c.Case.switches * c.Case.hosts_per_switch
    in
    check_bool "mix/connections have >= 2 hosts" true
      (match c.Case.workload with
      | Case.Mix | Case.Connections -> hosts >= 2
      | Case.Joins | Case.Blast -> true);
    check_bool "k < nodes" true (c.Case.k < c.Case.nodes)
  done

let test_gen_primitives () =
  let rng = Jury_sim.Rng.create 1 in
  for _ = 1 to 100 do
    let v = Gen.int_in 3 9 rng in
    check_bool "int_in bounds" true (v >= 3 && v <= 9)
  done;
  let xs = Gen.list_of ~len:(Gen.return 5) (Gen.int_in 0 10) rng in
  check_int "list_of length" 5 (List.length xs)

(* --- shrinker --- *)

let test_candidates_shrink () =
  for seed = 0 to 49 do
    let c = Case.generate ~seed in
    List.iter
      (fun c' ->
        check_bool "candidate is strictly smaller" true
          (Shrink.size c' < Shrink.size c);
        (* and still buildable *)
        ignore (Case.jury_config c'))
      (Shrink.candidates c)
  done

let test_minimise_artificial () =
  (* An oracle that fails whenever the case still has faults or more
     than 6 triggers; the shrinker must reach the floor of both axes
     without executing the system (the fake oracle never forces the
     base outcome). *)
  let fake =
    { Oracle.name = "fake"; family = "fake"; doc = "test fake";
      check =
        (fun ctx ->
          let c = ctx.Oracle.case in
          if c.Case.triggers > 6 || c.Case.faults <> [] then
            Oracle.Fail "too big"
          else Oracle.Pass) }
  in
  let case = { (Case.generate ~seed:3) with Case.triggers = 40 } in
  let failures = Oracle.check_case ~oracles:[ fake ] case in
  check_bool "starts failing" true (failures <> []);
  let r = Shrink.minimise ~oracles:[ fake ] case failures in
  check_bool "minimal still fails" true (r.Shrink.failures <> []);
  check_bool "triggers at the boundary" true (r.Shrink.minimal.Case.triggers = 7);
  check_int "faults all dropped" 0 (List.length r.Shrink.minimal.Case.faults);
  check_bool "size decreased" true (Shrink.size r.Shrink.minimal < Shrink.size case)

let test_minimise_rejects_crashes () =
  (* A candidate that crashes the oracle must not be accepted as a
     smaller witness when the original failure was a genuine Fail. *)
  let fake =
    { Oracle.name = "crashy"; family = "fake"; doc = "test fake";
      check =
        (fun ctx ->
          let c = ctx.Oracle.case in
          if c.Case.triggers <= 10 then failwith "boom"
          else if c.Case.triggers > 20 then Oracle.Fail "too many triggers"
          else Oracle.Pass) }
  in
  let case = { (Case.generate ~seed:5) with Case.triggers = 40 } in
  let failures = Oracle.check_case ~oracles:[ fake ] case in
  let r = Shrink.minimise ~oracles:[ fake ] case failures in
  check_bool "stops above the crash zone" true
    (r.Shrink.minimal.Case.triggers > 20)

(* --- end-to-end --- *)

let tiny_case =
  { Case.case_seed = 1234;
    topo = Case.Linear;
    switches = 2;
    hosts_per_switch = 1;
    nodes = 3;
    k = 1;
    odl = false;
    workload = Case.Mix;
    rate = 200.;
    duration_ms = 150;
    faults = [];
    drop = 0.02;
    duplicate = 0.;
    jitter_us = 0.;
    retries = 1;
    degraded_quorum = None;
    shards = 2;
    max_inflight = None;
    batch_us = Some 200;
    triggers = 8 }

let test_execute_replays () =
  let a = Run.execute tiny_case and b = Run.execute tiny_case in
  (match Run.diff_fingerprint a.Run.fp b.Run.fp with
  | None -> ()
  | Some d -> Alcotest.failf "replay diverged: %s" d);
  check_bool "worked at all" true (a.Run.fp.Run.decided > 0)

let test_oracles_pass_tiny () =
  match Registry.check_case tiny_case with
  | [] -> ()
  | vs ->
      Alcotest.failf "tiny case violates: %s"
        (String.concat "; "
           (List.map
              (fun ((o : Oracle.t), m) -> o.Oracle.name ^ ": " ^ m)
              vs))

let test_backtoback_deployments_delta () =
  (* Back-to-back full Deployment.install runs (what every fuzz case
     does) must each account exactly for their own work in the
     process-wide counters, and reproduce identical outcomes — i.e. no
     global mutable state leaks from one installed deployment into the
     next. *)
  let d0 = Validator.total_decided () and b0 = Validator.total_batches () in
  let a = Run.execute tiny_case in
  let d1 = Validator.total_decided () and b1 = Validator.total_batches () in
  check_int "first run's decided delta" a.Run.fp.Run.decided (d1 - d0);
  check_int "first run's batch delta" a.Run.batches (b1 - b0);
  let b = Run.execute tiny_case in
  let d2 = Validator.total_decided () and b2 = Validator.total_batches () in
  check_int "second run's decided delta" b.Run.fp.Run.decided (d2 - d1);
  check_int "second run's batch delta" b.Run.batches (b2 - b1);
  check_bool "identical outcomes" true (a = b);
  check_bool "retransmission exercised and reproduced" true
    (a.Run.totals.Jury.Channel.retransmitted
     = b.Run.totals.Jury.Channel.retransmitted)

let test_backtoback_overload_delta () =
  (* Same hygiene for the overload counter, driven on bare validators
     (full-system cases rarely hit the in-flight bound). *)
  let overload_run () =
    let engine = Jury_sim.Engine.create ~seed:9 () in
    let cfg =
      Jury.Jury_config.validator
        ~ack_peers_of:(fun _ -> [])
        (Jury.Jury_config.make ~k:2 ~max_inflight:2 ())
    in
    let v = Validator.create engine cfg in
    for serial = 0 to 9 do
      Validator.register_external v
        ~taint:(Jury_controller.Types.Taint.external_trigger ~primary:0 ~serial)
        ~at:(Jury_sim.Engine.now engine) ~primary:0 ~secondaries:[ 1; 2 ]
    done;
    Validator.flush v;
    Validator.overload_count v
  in
  let o0 = Validator.total_overloads () in
  let n1 = overload_run () in
  let o1 = Validator.total_overloads () in
  check_bool "overload exercised" true (n1 > 0);
  check_int "first run's overload delta" n1 (o1 - o0);
  let n2 = overload_run () in
  let o2 = Validator.total_overloads () in
  check_int "second run's overload delta" n2 (o2 - o1);
  check_int "identical overload counts" n1 n2

(* The shared selector table behind `check --oracle` and `mc --oracle`:
   a family resolves to its oracles, an exact name to a singleton, and
   anything else to an error that lists every valid choice. *)
let test_oracle_resolve () =
  (match Jury_check.Registry.resolve "sharding" with
  | Ok os ->
      check_int "family resolves to its oracles"
        (List.length (Jury_check.Registry.by_family "sharding"))
        (List.length os)
  | Error e -> Alcotest.fail e);
  (match Jury_check.Registry.names () with
  | [] -> Alcotest.fail "no oracle names"
  | name :: _ -> (
      match Jury_check.Registry.resolve name with
      | Ok [ o ] -> Alcotest.(check string) "exact name" name o.Jury_check.Oracle.name
      | Ok _ -> Alcotest.fail "name resolved to several oracles"
      | Error e -> Alcotest.fail e));
  match Jury_check.Registry.resolve "no-such-oracle" with
  | Ok _ -> Alcotest.fail "unknown selector accepted"
  | Error e ->
      let contains needle =
        let nh = String.length e and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub e i nn = needle || go (i + 1)) in
        go 0
      in
      check_bool "error names the selector" true (contains "no-such-oracle");
      List.iter
        (fun f -> check_bool ("error lists family " ^ f) true (contains f))
        (Jury_check.Registry.families ());
      List.iter
        (fun n -> check_bool ("error lists oracle " ^ n) true (contains n))
        (Jury_check.Registry.names ())

let suite =
  [ Alcotest.test_case "generate is deterministic" `Quick
      test_generate_deterministic;
    Alcotest.test_case "oracle selector resolution" `Quick test_oracle_resolve;
    Alcotest.test_case "generated cases are buildable" `Quick
      test_generate_valid;
    Alcotest.test_case "generator primitives" `Quick test_gen_primitives;
    Alcotest.test_case "candidates strictly shrink and stay valid" `Quick
      test_candidates_shrink;
    Alcotest.test_case "minimise reaches the failure boundary" `Quick
      test_minimise_artificial;
    Alcotest.test_case "minimise rejects crash-only candidates" `Quick
      test_minimise_rejects_crashes;
    Alcotest.test_case "execute replays bit-identically" `Slow
      test_execute_replays;
    Alcotest.test_case "oracle battery passes a known-good case" `Slow
      test_oracles_pass_tiny;
    Alcotest.test_case "back-to-back deployments give exact deltas" `Slow
      test_backtoback_deployments_delta;
    Alcotest.test_case "back-to-back overload retirement deltas" `Quick
      test_backtoback_overload_delta ]
