(* Unit and property tests for the discrete-event engine substrate. *)

open Jury_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time --- *)

let test_time_units () =
  check_int "us" 1_000 (Time.to_ns (Time.us 1));
  check_int "ms" 1_000_000 (Time.to_ns (Time.ms 1));
  check_int "sec" 1_000_000_000 (Time.to_ns (Time.sec 1));
  Alcotest.(check (float 1e-9)) "to_float_sec" 1.5
    (Time.to_float_sec (Time.of_float_sec 1.5));
  Alcotest.(check (float 1e-6)) "ms roundtrip" 129.3
    (Time.to_float_ms (Time.of_float_ms 129.3))

let test_time_arith () =
  let a = Time.ms 5 and b = Time.ms 3 in
  check_int "add" 8_000_000 (Time.to_ns (Time.add a b));
  check_int "sub" 2_000_000 (Time.to_ns (Time.sub a b));
  check_int "diff sym" (Time.to_ns (Time.diff a b)) (Time.to_ns (Time.diff b a));
  check_int "mul" 15_000_000 (Time.to_ns (Time.mul a 3));
  check_int "div" 2_500_000 (Time.to_ns (Time.div a 2));
  Alcotest.check_raises "negative sub" (Invalid_argument "Time.sub: negative result")
    (fun () -> ignore (Time.sub b a));
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.ns: negative")
    (fun () -> ignore (Time.ns (-1)))

let test_time_pp () =
  Alcotest.(check string) "ns" "500ns" (Time.to_string (Time.ns 500));
  Alcotest.(check string) "us" "12.0us" (Time.to_string (Time.us 12));
  Alcotest.(check string) "ms" "129.0ms" (Time.to_string (Time.ms 129));
  Alcotest.(check string) "sec" "2.000s" (Time.to_string (Time.sec 2))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let x = Rng.bits64 child and y = Rng.bits64 parent in
  check_bool "split differs from parent" true (x <> y)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "int in range" true (v >= 0 && v < 17);
    let w = Rng.int_in rng 5 9 in
    check_bool "int_in range" true (w >= 5 && w <= 9);
    let f = Rng.float rng 2.5 in
    check_bool "float in range" true (f >= 0. && f < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 10.
  done;
  let mean = !sum /. float_of_int n in
  check_bool "exponential mean near 10" true (mean > 9. && mean < 11.)

let test_rng_bernoulli () =
  let rng = Rng.create 13 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000. in
  check_bool "bernoulli ~0.3" true (p > 0.27 && p < 0.33)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 17 in
  let xs = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let s = Rng.sample_without_replacement rng 3 xs in
  check_int "sample size" 3 (List.length s);
  check_int "distinct" 3 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> check_bool "member" true (List.mem x xs)) s;
  check_int "k >= n returns all" 7
    (List.length (Rng.sample_without_replacement rng 10 xs))

let test_rng_choice_shuffle () =
  let rng = Rng.create 19 in
  let arr = Array.init 10 Fun.id in
  for _ = 1 to 50 do
    let c = Rng.choice rng arr in
    check_bool "choice member" true (c >= 0 && c < 10)
  done;
  let arr2 = Array.copy arr in
  Rng.shuffle rng arr2;
  Array.sort compare arr2;
  Alcotest.(check (array int)) "shuffle is permutation" arr arr2

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  let rng = Rng.create 23 in
  for i = 1 to 500 do
    Heap.push h ~key:(Time.us (Rng.int rng 1000)) ~seq:i i
  done;
  let prev = ref (Time.zero, 0) in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.pop h with
    | None -> continue := false
    | Some (key, seq, _) ->
        let pk, ps = !prev in
        check_bool "non-decreasing key" true
          (Time.compare pk key < 0 || (Time.equal pk key && ps < seq));
        prev := (key, seq);
        incr count
  done;
  check_int "all popped" 500 !count

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~key:(Time.ms 1) ~seq:i i
  done;
  for i = 1 to 10 do
    match Heap.pop h with
    | Some (_, _, v) -> check_int "fifo order on ties" i v
    | None -> Alcotest.fail "heap empty early"
  done

(* Popped payloads must become collectable even while the heap stays
   live: the backing array must not pin them at vacated slots. *)
let test_heap_pop_releases () =
  let h = Heap.create () in
  let weaks = Weak.create 64 in
  for i = 0 to 63 do
    let payload = ref i in
    Weak.set weaks i (Some payload);
    Heap.push h ~key:(Time.us i) ~seq:i payload
  done;
  (* Drain half, then churn with fresh payloads so the heap keeps a
     non-trivial live region the whole time. *)
  for _ = 1 to 32 do
    ignore (Heap.pop h)
  done;
  for i = 64 to 95 do
    Heap.push h ~key:(Time.us i) ~seq:i (ref i)
  done;
  for _ = 1 to 16 do
    ignore (Heap.pop h)
  done;
  Gc.full_major ();
  (* Tracked payloads 0..47 were popped; 48..63 are still queued and
     must stay pinned — exactly 16 weak refs survive. *)
  let pinned = ref 0 in
  for i = 0 to 63 do
    if Weak.check weaks i then incr pinned
  done;
  check_int "only queued payloads pinned" 16 !pinned;
  check_int "live region intact" 48 (Heap.length h);
  (* Drain to empty: the array itself must be dropped. *)
  while Heap.pop h <> None do
    ()
  done;
  Gc.full_major ();
  let pinned = ref 0 in
  for i = 0 to 63 do
    if Weak.check weaks i then incr pinned
  done;
  check_int "empty heap pins nothing" 0 !pinned

(* --- Engine --- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~after:(Time.ms 2) (fun () -> log := 2 :: !log));
  ignore (Engine.schedule e ~after:(Time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~after:(Time.ms 3) (fun () -> log := 3 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" 3_000_000 (Time.to_ns (Engine.now e))

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~after:(Time.ms 1) (fun () -> fired := true) in
  check_bool "pending" true (Engine.is_pending h);
  Engine.cancel h;
  check_bool "not pending" false (Engine.is_pending h);
  Engine.run e;
  check_bool "cancelled never fires" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~after:(Time.ms i) (fun () -> incr fired))
  done;
  Engine.run e ~until:(Time.ms 5);
  check_int "only first five" 5 !fired;
  check_int "clock at horizon" 5_000_000 (Time.to_ns (Engine.now e));
  Engine.run e;
  check_int "rest run later" 10 !fired

let test_engine_every () =
  let e = Engine.create () in
  let fired = ref 0 in
  let h = Engine.every e ~period:(Time.ms 10) (fun () -> incr fired) in
  Engine.run e ~until:(Time.ms 55);
  check_int "five periods" 5 !fired;
  Engine.cancel h;
  Engine.run e ~until:(Time.ms 200);
  check_int "stopped after cancel" 5 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~after:(Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule e ~after:(Time.ms 1) (fun () ->
                log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log)

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:(Time.ms 5) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Engine.schedule_at e ~at:(Time.ms 1) (fun () -> ())))

let test_engine_every_jitter () =
  let e = Engine.create ~seed:4 () in
  let stamps = ref [] in
  let h =
    Engine.every e ~period:(Time.ms 10) ~jitter:(Time.ms 5) (fun () ->
        stamps := Engine.now e :: !stamps)
  in
  Engine.run e ~until:(Time.ms 200);
  Engine.cancel h;
  let stamps = List.rev !stamps in
  check_bool "fired repeatedly" true (List.length stamps >= 10);
  (* gaps lie within [period, period + jitter] *)
  let rec gaps_ok = function
    | a :: (b :: _ as rest) ->
        let gap = Time.to_ns (Time.sub b a) in
        gap >= 10_000_000 && gap <= 15_000_001 && gaps_ok rest
    | _ -> true
  in
  check_bool "jitter bounded" true (gaps_ok stamps)

let test_engine_run_until_boundary () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~after:(Time.ms 5) (fun () -> fired := true));
  (* an event exactly at the horizon runs *)
  Engine.run e ~until:(Time.ms 5);
  check_bool "boundary event runs" true !fired

(* --- Metrics --- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.record m "lat" 1.0;
  Metrics.record m "lat" 2.0;
  Metrics.record_time m "lat" (Time.ms 3);
  Alcotest.(check (array (float 1e-9))) "samples" [| 1.; 2.; 3. |]
    (Metrics.samples m "lat");
  Metrics.incr m "hits";
  Metrics.incr m ~by:4 "hits";
  check_int "counter" 5 (Metrics.count m "hits");
  check_int "missing counter" 0 (Metrics.count m "nope");
  Alcotest.(check (list string)) "names" [ "lat" ] (Metrics.series_names m);
  Metrics.clear m;
  check_int "cleared" 0 (Array.length (Metrics.samples m "lat"))

(* --- QCheck properties --- *)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (int_bound 100_000))
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:(Time.ns k) ~seq:i k) keys;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some (_, _, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys
      || List.sort compare popped = List.sort compare keys
         && List.for_all2 ( <= )
              (List.filteri (fun i _ -> i < List.length popped - 1) popped)
              (List.tl popped))

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int bounded" ~count:500
    QCheck.(pair int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [ ("time units", `Quick, test_time_units);
    ("time arithmetic", `Quick, test_time_arith);
    ("time pretty-printing", `Quick, test_time_pp);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng bernoulli", `Quick, test_rng_bernoulli);
    ("rng sampling", `Quick, test_rng_sample_without_replacement);
    ("rng choice and shuffle", `Quick, test_rng_choice_shuffle);
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap fifo on ties", `Quick, test_heap_fifo_ties);
    ("heap pop releases payloads", `Quick, test_heap_pop_releases);
    ("engine ordering", `Quick, test_engine_ordering);
    ("engine cancel", `Quick, test_engine_cancel);
    ("engine run until", `Quick, test_engine_until);
    ("engine every", `Quick, test_engine_every);
    ("engine nested schedule", `Quick, test_engine_nested_schedule);
    ("engine rejects past", `Quick, test_engine_past_rejected);
    ("metrics", `Quick, test_metrics);
    ("engine every with jitter", `Quick, test_engine_every_jitter);
    ("engine horizon boundary", `Quick, test_engine_run_until_boundary);
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    QCheck_alcotest.to_alcotest prop_rng_int_bounds ]
