(* Tests for the jury_par domain pool and the parallel-experiment
   contract: result ordering, per-task exception capture,
   serial-vs-parallel byte-identity of seeded sweeps, packed vs legacy
   flow-table index keys, and the root-RNG draw-order pin for
   Engine.every ~jitter. *)

module Pool = Jury_par.Pool
module Of_match = Jury_openflow.Of_match
module Of_message = Jury_openflow.Of_message
module Flow_table = Jury_openflow.Flow_table
module Frame = Jury_packet.Frame
module Mac = Jury_packet.Addr.Mac
module Ipv4 = Jury_packet.Addr.Ipv4
module Time = Jury_sim.Time

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Pool basics --- *)

let test_map_ordered_order () =
  let pool = Pool.create ~jobs:4 () in
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "squares in submission order"
    (List.map (fun i -> i * i) xs)
    (Pool.map_ordered pool xs (fun i -> i * i))

let test_map_ordered_degenerate () =
  let serial = Pool.create ~jobs:1 () in
  Alcotest.(check (list int)) "jobs=1" [ 2; 3; 4 ]
    (Pool.map_ordered serial [ 1; 2; 3 ] succ);
  Alcotest.(check (list int)) "empty input" []
    (Pool.map_ordered (Pool.create ~jobs:4 ()) [] succ);
  check_int "jobs clamped to 1" 1 (Pool.jobs (Pool.create ~jobs:0 ()))

let test_exception_capture () =
  let pool = Pool.create ~jobs:3 () in
  let results =
    Pool.try_map_ordered pool [ 0; 1; 2; 3; 4 ] (fun i ->
        if i mod 2 = 1 then failwith (Printf.sprintf "config %d died" i)
        else i * 10)
  in
  check_int "one result per task" 5 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          check_bool "survivor parity" true (i mod 2 = 0);
          check_int "survivor value" (i * 10) v
      | Error e ->
          check_bool "failure parity" true (i mod 2 = 1);
          check_int "failed task index" i e.Pool.task_index;
          check_bool "message names the config" true
            (e.Pool.message = Printf.sprintf "Failure(\"config %d died\")" i
            || String.length e.Pool.message > 0))
    results

let test_map_ordered_raises_with_indices () =
  let pool = Pool.create ~jobs:2 () in
  match
    Pool.map_ordered pool [ 0; 1; 2; 3 ] (fun i ->
        if i = 1 || i = 3 then raise Not_found else i)
  with
  | _ -> Alcotest.fail "expected Tasks_failed"
  | exception Pool.Tasks_failed errors ->
      Alcotest.(check (list int))
        "all failed indices, in order" [ 1; 3 ]
        (List.map (fun e -> e.Pool.task_index) errors)

let test_persistent_worker_reuse () =
  (* Satellite contract: one pool pays its domain spawns once, not per
     map_ordered call. Sweep the same pool many times and require the
     process-wide spawn counter to move by at most jobs - 1. *)
  let pool = Pool.create ~jobs:3 () in
  let before = Pool.domains_spawned () in
  for round = 1 to 20 do
    let xs = List.init 16 (fun i -> (round * 100) + i) in
    Alcotest.(check (list int))
      "round results" (List.map succ xs)
      (Pool.map_ordered pool xs succ)
  done;
  let spawned = Pool.domains_spawned () - before in
  check_bool
    (Printf.sprintf "spawns bounded by jobs-1 (got %d)" spawned)
    true (spawned <= 2);
  check_bool "workers persisted" true (Pool.persistent_workers pool >= 1)

let test_async_await () =
  let pool = Pool.create ~jobs:2 () in
  let cell = Atomic.make 0 in
  let t1 = Pool.async pool (fun () -> Atomic.set cell 41) in
  Pool.await t1;
  check_int "async ran" 41 (Atomic.get cell);
  let t2 = Pool.async pool (fun () -> failwith "consumer died") in
  (match Pool.await t2 with
  | () -> Alcotest.fail "await must re-raise"
  | exception Failure m -> Alcotest.(check string) "exn text" "consumer died" m);
  (* Saturate: more async tasks than workers must all still run
     (dedicated-domain fallback keeps liveness). *)
  let n = 5 in
  let hits = Atomic.make 0 in
  let tickets =
    List.init n (fun _ -> Pool.async pool (fun () -> Atomic.incr hits))
  in
  List.iter Pool.await tickets;
  check_int "all saturated tasks ran" n (Atomic.get hits)

let test_shutdown () =
  (* A throwaway pool must release its worker domains on shutdown —
     otherwise a loop of short-lived pools (one per fuzz case) parks
     domains until process exit and hits the runtime's domain cap. *)
  let pool = Pool.create ~jobs:3 () in
  let xs = List.init 16 Fun.id in
  Alcotest.(check (list int))
    "sweep before shutdown" (List.map succ xs)
    (Pool.map_ordered pool xs succ);
  check_bool "workers attached" true (Pool.persistent_workers pool >= 1);
  Pool.shutdown pool;
  check_int "workers joined" 0 (Pool.persistent_workers pool);
  Pool.shutdown pool (* idempotent *);
  let before = Pool.domains_spawned () in
  Alcotest.(check (list int))
    "post-shutdown sweep degrades to serial" (List.map succ xs)
    (Pool.map_ordered pool xs succ);
  check_int "no respawn after shutdown" before (Pool.domains_spawned ());
  (* async keeps its liveness guarantee via the dedicated fallback. *)
  let cell = Atomic.make 0 in
  Pool.await (Pool.async pool (fun () -> Atomic.set cell 7));
  check_int "async after shutdown still runs" 7 (Atomic.get cell)

(* --- SPSC queue --- *)

module Spsc = Jury_par.Spsc

let test_spsc_wraparound () =
  let q = Spsc.create ~capacity:4 in
  check_int "capacity rounded to pow2" 4 (Spsc.capacity q);
  check_int "rounding up" 8 (Spsc.capacity (Spsc.create ~capacity:5));
  (* Push/pop far more elements than the ring holds so the cursors lap
     the array repeatedly; FIFO order must survive every wrap. *)
  let out = ref [] in
  for cycle = 0 to 24 do
    for i = 0 to 2 do
      Spsc.push q ((cycle * 3) + i)
    done;
    for _ = 0 to 2 do
      match Spsc.try_pop q with
      | Some v -> out := v :: !out
      | None -> Alcotest.fail "pop missed a pushed element"
    done
  done;
  Alcotest.(check (list int))
    "FIFO across wraps" (List.init 75 Fun.id) (List.rev !out)

let test_spsc_full_empty_close () =
  let q = Spsc.create ~capacity:2 in
  check_bool "starts empty" true (Spsc.is_empty q);
  Alcotest.(check (option int)) "pop on empty" None (Spsc.try_pop q);
  check_bool "push 1" true (Spsc.try_push q 1);
  check_bool "push 2" true (Spsc.try_push q 2);
  check_bool "push on full fails" false (Spsc.try_push q 3);
  check_int "length at capacity" 2 (Spsc.length q);
  Alcotest.(check (option int)) "drains oldest" (Some 1) (Spsc.try_pop q);
  check_bool "slot freed" true (Spsc.try_push q 3);
  Spsc.close q;
  check_bool "closed" true (Spsc.is_closed q);
  (match Spsc.try_push q 4 with
  | (_ : bool) -> Alcotest.fail "push after close must raise"
  | exception Spsc.Closed -> ());
  Alcotest.(check (option int)) "drain after close" (Some 2) (Spsc.pop q);
  Alcotest.(check (option int)) "drain after close" (Some 3) (Spsc.pop q);
  Alcotest.(check (option int)) "end of stream" None (Spsc.pop q)

let test_spsc_cross_domain_ordering () =
  (* One producer, one consumer on a real second domain, a ring far
     smaller than the stream: back-pressure engages and order must
     still be exact. *)
  let n = 20_000 in
  let q = Spsc.create ~capacity:8 in
  let consumer =
    Domain.spawn (fun () ->
        (* The stream is 0, 1, 2, ... so exact FIFO means the i-th pop
           returns i — the strongest possible ordering check. *)
        let rec drain count =
          match Spsc.pop q with
          | None -> count
          | Some v ->
              if v <> count then
                Alcotest.failf "pop %d returned %d (order broken)" count v;
              drain (count + 1)
        in
        drain 0)
  in
  for i = 0 to n - 1 do
    Spsc.push q i
  done;
  Spsc.close q;
  check_int "every element delivered exactly once" n (Domain.join consumer)

(* --- Serial vs parallel byte-identity --- *)

let test_fig4a_serial_parallel_identical () =
  (* Same seeds, different worker counts: the sweep must return the
     exact same structure (labels, sample counts, every CDF point). *)
  let duration = Time.ms 1500 and rate = 800. in
  let serial =
    Jury_experiments.Figures.fig4a ~pool:(Pool.create ~jobs:1 ()) ~duration
      ~rate ()
  in
  let parallel =
    Jury_experiments.Figures.fig4a ~pool:(Pool.create ~jobs:3 ()) ~duration
      ~rate ()
  in
  check_int "series count" (List.length serial) (List.length parallel);
  check_bool "structurally identical" true (serial = parallel);
  check_bool "non-trivial" true
    (List.exists
       (fun (s : Jury_experiments.Figures.cdf_series) -> s.samples > 0)
       serial)

let test_run_matrix_serial_parallel_identical () =
  let scenarios =
    [ Jury_faults.Scenarios.link_failure;
      List.hd Jury_faults.Scenarios.all ]
  in
  let project results =
    (* Scenarios carry closures, so compare the plain-data projection. *)
    List.map
      (fun ((s : Jury_faults.Scenarios.t), reports) ->
        ( s.Jury_faults.Scenarios.name,
          List.map
            (fun (r : Jury_faults.Runner.report) ->
              (r.detected, r.detection_time_ms, r.verdict_count))
            reports ))
      results
  in
  let run pool =
    project
      (Jury_faults.Runner.run_matrix ~pool ~repeats:3 ~switches:8 scenarios)
  in
  let serial = run (Pool.create ~jobs:1 ()) in
  let parallel = run (Pool.create ~jobs:4 ()) in
  check_bool "matrix identical across worker counts" true (serial = parallel);
  check_int "grouped per scenario" 2 (List.length serial);
  List.iter
    (fun (_, reports) -> check_int "repeats per scenario" 3
        (List.length reports))
    serial

(* --- Packed vs legacy flow-table keys --- *)

let host i = (Mac.of_host_index i, Ipv4.of_host_index i)

let tcp_frame ?(src = 0) ?(dst = 1) ?(sport = 1234) ?(dport = 80) () =
  Frame.tcp_packet ~src:(host src) ~dst:(host dst) ~src_port:sport
    ~dst_port:dport ()

let key_fixture () =
  let exact = Of_match.exact_of_frame ~in_port:3 (tcp_frame ()) in
  [ ("exact /32", exact);
    ( "coarser /24 src",
      { exact with Of_match.nw_src = Some (Ipv4.of_host_index 0, 24) } );
    ( "coarser /0 dst",
      { exact with Of_match.nw_dst = Some (Ipv4.of_host_index 1, 0) } );
    ("nw wildcarded", { exact with Of_match.nw_src = None; nw_dst = None });
    ("no dl_type", { exact with Of_match.dl_type = None });
    ("no in_port", { exact with Of_match.in_port = None });
    ("wildcard all", Of_match.wildcard_all);
    ( "l2 only",
      Of_match.l2_pair ~src:(Mac.of_host_index 0) ~dst:(Mac.of_host_index 1)
    ) ]

let test_key_classification_agrees () =
  (* Invariant 1: the packed key indexes a match iff the legacy string
     key did — including on the /32-vs-coarser prefix boundary. *)
  List.iter
    (fun (name, m) ->
      let legacy = Flow_table.Private.legacy_key_of_match m in
      let packed = Flow_table.Private.packed_key_of_match m in
      check_bool (name ^ ": same indexability") true
        (Option.is_some legacy = Option.is_some packed))
    (key_fixture ());
  let indexable name m expect =
    check_bool name expect
      (Option.is_some (Flow_table.Private.packed_key_of_match m))
  in
  let exact = Of_match.exact_of_frame ~in_port:3 (tcp_frame ()) in
  indexable "/32 prefixes are indexable" exact true;
  indexable "/24 is not"
    { exact with Of_match.nw_src = Some (Ipv4.of_host_index 0, 24) }
    false;
  indexable "nw wildcard still is"
    { exact with Of_match.nw_src = None; nw_dst = None }
    true

let test_key_equality_agrees () =
  (* Invariant 2: legacy-key equality implies packed-key equality (same
     bucket before => same bucket after). *)
  let pairs =
    List.concat_map
      (fun (na, ma) ->
        List.filter_map
          (fun (nb, mb) ->
            match
              ( Flow_table.Private.legacy_key_of_match ma,
                Flow_table.Private.legacy_key_of_match mb )
            with
            | Some la, Some lb when la = lb -> Some (na ^ " / " ^ nb, ma, mb)
            | _ -> None)
          (key_fixture ()))
      (key_fixture ())
  in
  check_bool "fixture has equal-key pairs" true (List.length pairs >= 2);
  List.iter
    (fun (name, ma, mb) ->
      check_bool (name ^ ": packed keys equal") true
        (Flow_table.Private.packed_key_of_match ma
        = Flow_table.Private.packed_key_of_match mb))
    pairs

let test_frame_and_match_keys_agree () =
  (* A frame's direct key must land in the bucket of the exact match a
     reactive controller builds from that frame — that is what makes
     the lookup fast path correct. *)
  List.iter
    (fun frame ->
      let exact = Of_match.exact_of_frame ~in_port:5 frame in
      (match Flow_table.Private.packed_key_of_match exact with
      | None -> Alcotest.fail "exact_of_frame must be indexable"
      | Some k ->
          check_bool "frame key = exact-match key" true
            (k = Flow_table.Private.packed_key_of_frame ~in_port:5 frame));
      check_bool "legacy agrees too" true
        (Flow_table.Private.legacy_key_of_frame ~in_port:5 frame
        = Flow_table.Private.legacy_key_of_match exact))
    [ tcp_frame ();
      tcp_frame ~src:7 ~dst:9 ~sport:53 ~dport:4242 ();
      Frame.udp_packet ~src:(host 2) ~dst:(host 3) ~src_port:68 ~dst_port:67
        () ]

let test_boundary_lookup_and_strict_delete () =
  (* A coarser /24 rule is non-indexable (wildcard store) while the /32
     micro-flow is exact-indexed; lookup must still combine both by
     priority, and a strict delete of the /32 must not touch the /24. *)
  let now = Time.ms 1 in
  let table = Flow_table.create () in
  let frame = tcp_frame () in
  let exact = Of_match.exact_of_frame ~in_port:1 frame in
  let coarse =
    { exact with
      Of_match.nw_src = Some (Ipv4.of_host_index 0, 24);
      tp_src = None;
      tp_dst = None }
  in
  let add m priority =
    match
      Flow_table.apply_flow_mod table ~now
        (Of_message.flow_mod ~priority m [ Jury_openflow.Of_action.Output 2 ])
    with
    | Flow_table.Installed -> ()
    | _ -> Alcotest.fail "install failed"
  in
  add exact 10;
  add coarse 50;
  (match Flow_table.lookup table ~now ~in_port:1 frame with
  | Some e -> check_int "coarser rule wins on priority" 50 e.priority
  | None -> Alcotest.fail "lookup missed");
  (match
     Flow_table.apply_flow_mod table ~now
       (Of_message.flow_mod ~command:Of_message.Delete_strict ~priority:10
          exact [])
   with
  | Flow_table.Removed [ e ] -> check_int "removed the /32" 10 e.priority
  | _ -> Alcotest.fail "strict delete must remove exactly the /32");
  (match Flow_table.lookup table ~now ~in_port:1 frame with
  | Some e -> check_int "coarse survives strict delete" 50 e.priority
  | None -> Alcotest.fail "coarse rule lost");
  check_int "one entry left" 1 (Flow_table.size table)

(* --- Engine.every ~jitter root-RNG draw-order pin --- *)

let test_every_jitter_draw_order () =
  (* Pin the documented contract: a jittered recurrence draws exactly
     one Rng.int from the engine's root RNG per re-arm — once at
     creation and once after each firing — with the jitter bound in
     nanoseconds as the draw's bound. If this test breaks, seeded runs
     have changed behaviour: see the RNG-ownership note in engine.mli. *)
  let seed = 99 in
  let jitter = Time.us 100 in
  let engine = Jury_sim.Engine.create ~seed () in
  let fires = ref 0 in
  ignore
    (Jury_sim.Engine.every engine ~period:(Time.ms 10) ~jitter (fun () ->
         incr fires));
  Jury_sim.Engine.run engine ~until:(Time.ms 35);
  check_bool "recurrence fired" true (!fires >= 2);
  let mirror = Jury_sim.Rng.create seed in
  for _ = 0 to !fires do
    (* creation + one per firing *)
    ignore (Jury_sim.Rng.int mirror (Time.to_ns jitter))
  done;
  check_int "root RNG stream position is pinned"
    (Jury_sim.Rng.int mirror 1_000_000)
    (Jury_sim.Rng.int (Jury_sim.Engine.rng engine) 1_000_000)

let suite =
  [ Alcotest.test_case "pool: map_ordered keeps order" `Quick
      test_map_ordered_order;
    Alcotest.test_case "pool: degenerate cases" `Quick
      test_map_ordered_degenerate;
    Alcotest.test_case "pool: per-task exception capture" `Quick
      test_exception_capture;
    Alcotest.test_case "pool: map_ordered raises with indices" `Quick
      test_map_ordered_raises_with_indices;
    Alcotest.test_case "pool: persistent workers reused across sweeps" `Quick
      test_persistent_worker_reuse;
    Alcotest.test_case "pool: async/await + saturation fallback" `Quick
      test_async_await;
    Alcotest.test_case "pool: shutdown joins workers" `Quick test_shutdown;
    Alcotest.test_case "spsc: wraparound keeps FIFO" `Quick
      test_spsc_wraparound;
    Alcotest.test_case "spsc: full/empty/close semantics" `Quick
      test_spsc_full_empty_close;
    Alcotest.test_case "spsc: cross-domain ordering under back-pressure"
      `Quick test_spsc_cross_domain_ordering;
    Alcotest.test_case "fig4a identical serial vs parallel" `Slow
      test_fig4a_serial_parallel_identical;
    Alcotest.test_case "run_matrix identical serial vs parallel" `Slow
      test_run_matrix_serial_parallel_identical;
    Alcotest.test_case "flow-table key classification agrees" `Quick
      test_key_classification_agrees;
    Alcotest.test_case "flow-table key equality agrees" `Quick
      test_key_equality_agrees;
    Alcotest.test_case "frame and match keys agree" `Quick
      test_frame_and_match_keys_agree;
    Alcotest.test_case "/32 vs coarser boundary semantics" `Quick
      test_boundary_lookup_and_strict_delete;
    Alcotest.test_case "every ~jitter root-RNG draw order" `Quick
      test_every_jitter_draw_order ]
