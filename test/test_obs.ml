(* Tests for the jury_obs causal trace layer: span-tree shape for a
   PACKET_IN trigger, zero-perturbation when disabled, and the JSONL
   round-trip (the ISSUE acceptance criteria). *)

module Engine = Jury_sim.Engine
module Time = Jury_sim.Time
module Builder = Jury_topo.Builder
module Network = Jury_net.Network
module Host = Jury_net.Host
module Cluster = Jury_controller.Cluster
module Profile = Jury_controller.Profile
module Types = Jury_controller.Types
module Trace = Jury_obs.Trace
module Span = Jury_obs.Span
module Export = Jury_obs.Export

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small ONOS cluster (n=3, k=2, linear 4-switch topology) driven by
   one TCP connection, so the trace contains both convergence triggers
   and a data-plane PACKET_IN. Fixed seed: byte-identical across runs. *)
let run_fixture ?trace () =
  let engine = Engine.create ~seed:5 () in
  Option.iter (Engine.set_trace engine) trace;
  let plan = Builder.linear ~switches:4 ~hosts_per_switch:1 in
  let network = Network.create engine plan () in
  let cluster =
    Cluster.create engine ~profile:Profile.onos ~nodes:3 ~network ()
  in
  let deployment =
    Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ())
  in
  Cluster.converge cluster;
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  let h0 = Network.host network 0 in
  let h3 = Network.host network 3 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h3) ~dst_ip:(Host.ip h3) ~src_port:4242
    ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  deployment

let verdict_signature deployment =
  Jury.Validator.verdicts (Jury.Deployment.validator deployment)
  |> List.map (fun (a : Jury.Alarm.t) ->
         ( Types.Taint.to_string a.Jury.Alarm.taint,
           Jury.Alarm.verdict_name a.Jury.Alarm.verdict ))

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* (a) one root span per PACKET_IN with k replicate children on
   distinct secondaries, pipeline-service spans and a verdict point,
   all time-ordered. *)
let test_span_tree () =
  let trace = Trace.create () in
  ignore (run_fixture ~trace ());
  let events = Trace.events trace in
  check_bool "trace nonempty" true (events <> []);
  check_int "nothing dropped" 0 (Trace.dropped trace);
  (* Emission order is time order. *)
  ignore
    (List.fold_left
       (fun prev (e : Trace.event) ->
         check_bool "timestamps non-decreasing" true (e.Trace.t_ns >= prev);
         e.Trace.t_ns)
       0 events);
  (* Exactly one root open per taint. *)
  let opens = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.kind = Trace.Open Trace.Trigger then begin
        let taint = Option.get (Trace.taint_of e) in
        check_bool ("single root for " ^ taint) false (Hashtbl.mem opens taint);
        Hashtbl.add opens taint ()
      end)
    events;
  let roots = Span.assemble events in
  let packet_in (r : Span.t) =
    match List.assoc_opt "trigger" r.Span.open_attrs with
    | Some t -> has_prefix ~prefix:"PACKET_IN" t
    | None -> false
  in
  let closed_pkt =
    List.filter (fun r -> packet_in r && r.Span.closed_ns <> None) roots
  in
  check_bool "closed PACKET_IN root exists" true (closed_pkt <> []);
  let root = List.hd closed_pkt in
  let closed = Option.get root.Span.closed_ns in
  let replicas =
    List.filter (fun (c : Span.t) -> c.Span.phase = Trace.Replicate)
      root.Span.children
  in
  check_int "k=2 replicate children" 2 (List.length replicas);
  let replica_nodes = List.filter_map (fun c -> c.Span.node) replicas in
  check_int "replicas on distinct nodes" 2
    (List.length (List.sort_uniq compare replica_nodes));
  check_bool "replicas avoid the primary" false
    (List.exists (fun n -> Some n = root.Span.node) replica_nodes);
  check_bool "pipeline-service child present" true
    (List.exists
       (fun (c : Span.t) -> c.Span.phase = Trace.Pipeline_service)
       root.Span.children);
  check_bool "verdict point present" true
    (List.exists
       (fun (e : Trace.event) -> e.Trace.kind = Trace.Point Trace.Verdict)
       root.Span.points);
  (* Children nest inside the root's interval. *)
  List.iter
    (fun (c : Span.t) ->
      check_bool "child opens after root" true
        (c.Span.opened_ns >= root.Span.opened_ns);
      match c.Span.closed_ns with
      | None -> ()
      | Some c_closed ->
          check_bool "child closes after opening" true
            (c_closed >= c.Span.opened_ns);
          check_bool "child closes before root" true (c_closed <= closed))
    root.Span.children

(* (b) tracing disabled adds zero events and perturbs nothing. *)
let test_determinism () =
  let baseline = verdict_signature (run_fixture ()) in
  check_bool "fixture produces verdicts" true (baseline <> []);
  let disabled = Trace.create ~enabled:false () in
  let with_disabled = verdict_signature (run_fixture ~trace:disabled ()) in
  check_int "disabled trace records nothing" 0 (Trace.length disabled);
  let enabled = Trace.create () in
  let with_enabled = verdict_signature (run_fixture ~trace:enabled ()) in
  check_bool "enabled trace records" true (Trace.length enabled > 0);
  let sig_t = Alcotest.(list (pair string string)) in
  Alcotest.check sig_t "disabled = no trace" baseline with_disabled;
  Alcotest.check sig_t "enabled = no trace" baseline with_enabled

(* (c) JSONL export round-trips and queries agree across the trip. *)
let test_jsonl_roundtrip () =
  let trace = Trace.create () in
  ignore (run_fixture ~trace ());
  let events = Trace.events trace in
  match Export.of_jsonl (Export.to_jsonl events) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok events' ->
      check_int "same cardinality" (List.length events) (List.length events');
      check_bool "structurally equal" true (events = events');
      let taint = Option.get (List.find_map Trace.taint_of events) in
      let q = Export.query ~taint events in
      check_bool "taint query nonempty" true (q <> []);
      check_bool "taint query agrees across trip" true
        (q = Export.query ~taint events');
      List.iter
        (fun e -> check_bool "taint stamped" true (Trace.taint_of e = Some taint))
        q;
      let opens = Export.query ~kind:`Open events' in
      check_bool "kind filter nonempty" true (opens <> []);
      List.iter
        (fun (e : Trace.event) ->
          match e.Trace.kind with
          | Trace.Open _ -> ()
          | _ -> Alcotest.fail "kind filter leaked a non-open event")
        opens;
      let verdicts = Export.query ~phase:Trace.Verdict events' in
      check_bool "phase filter nonempty" true (verdicts <> []);
      let t0 = (List.hd events).Trace.t_ns in
      List.iter
        (fun (e : Trace.event) -> check_int "window filter" t0 e.Trace.t_ns)
        (Export.query ~since_ns:t0 ~until_ns:t0 events');
      (match Export.query ~node:0 events' with
      | [] -> Alcotest.fail "node filter found nothing for node 0"
      | es ->
          List.iter
            (fun (e : Trace.event) ->
              check_bool "node filter" true (e.Trace.node = Some 0))
            es)

let suite =
  [ ("packet_in span tree", `Quick, test_span_tree);
    ("disabled trace is inert", `Quick, test_determinism);
    ("jsonl round-trip + query", `Quick, test_jsonl_roundtrip) ]
