(* Tests for the policy framework: globs, parsers, evaluation. *)

module Pattern = Jury_policy.Pattern
module Ast = Jury_policy.Ast
module Parse = Jury_policy.Parse
module Engine = Jury_policy.Engine
module Compiled = Jury_policy.Compiled
module Event = Jury_store.Event
module Values = Jury_controller.Values
module Of_match = Jury_openflow.Of_match
module Of_message = Jury_openflow.Of_message
module Of_action = Jury_openflow.Of_action

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Patterns --- *)

let test_glob () =
  let m p s = Pattern.matches (Pattern.compile p) s in
  check_bool "exact" true (m "abc" "abc");
  check_bool "exact miss" false (m "abc" "abd");
  check_bool "star all" true (m "*" "anything");
  check_bool "star empty" true (m "*" "");
  check_bool "prefix" true (m "ab*" "abcdef");
  check_bool "suffix" true (m "*def" "abcdef");
  check_bool "middle" true (m "a*f" "abcdef");
  check_bool "two stars" true (m "a*c*e" "abcde");
  check_bool "question" true (m "a?c" "abc");
  check_bool "question miss" false (m "a?c" "abbc");
  check_bool "star backtrack" true (m "*b*c" "abxbc");
  check_bool "no match" false (m "x*" "abc");
  check_bool "is_star" true (Pattern.is_star (Pattern.compile "*"))

(* --- DSL parsing --- *)

let test_dsl_line () =
  match Parse.dsl_line "deny name=r1 ctrl=3 trigger=internal cache=EDGEDB op=update entry=*,down dest=remote" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r ->
      check_bool "deny" false r.Ast.allow;
      Alcotest.(check string) "name" "r1" r.Ast.name;
      check_bool "ctrl" true (r.Ast.controller = Ast.Controller_id 3);
      check_bool "trigger" true (r.Ast.trigger = Ast.Internal_only);
      Alcotest.(check (option string)) "cache" (Some "EDGEDB") r.Ast.cache;
      check_bool "op" true (r.Ast.operation = Ast.Op_is Event.Update);
      check_bool "dest" true (r.Ast.destination = Ast.Remote_only)

let test_dsl_document () =
  let src = "# comment\n\ndeny cache=LINKSDB\nallow cache=FLOWSDB\n" in
  match Parse.dsl src with
  | Ok rules -> check_int "two rules" 2 (List.length rules)
  | Error e -> Alcotest.failf "dsl failed: %s" e

let test_dsl_errors () =
  check_bool "bad verb" true (Result.is_error (Parse.dsl_line "frobnicate cache=X"));
  check_bool "bad field" true (Result.is_error (Parse.dsl_line "deny nope=1"));
  check_bool "bad op" true (Result.is_error (Parse.dsl_line "deny op=explode"))

(* --- XML parsing (the Fig. 3 syntax) --- *)

let fig3 =
  {|<Policy allow="No" name="no-proactive-edges">
      <Controller id="*"/>
      <Action type="Internal"/>
      <Cache ="EdgesDB" entry="*,*" operation="*"/>
      <Destination value="*"/>
    </Policy>|}

let test_xml_fig3 () =
  match Parse.xml fig3 with
  | Error e -> Alcotest.failf "fig3 parse failed: %s" e
  | Ok [ r ] ->
      check_bool "deny" false r.Ast.allow;
      check_bool "internal" true (r.Ast.trigger = Ast.Internal_only);
      Alcotest.(check (option string)) "cache normalised" (Some "EDGESDB")
        r.Ast.cache;
      check_bool "any controller" true (r.Ast.controller = Ast.Any_controller)
  | Ok _ -> Alcotest.fail "expected exactly one rule"

let test_xml_multiple_and_checks () =
  let src =
    {|<Policy allow="No" name="hier"><Cache name="FLOWSDB" check="flow-hierarchy"/></Policy>
      <Policy allow="Yes" name="ok"><Controller id="2"/></Policy>|}
  in
  match Parse.xml src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ a; b ] ->
      check_bool "check entry" true (a.Ast.entry = Ast.Flow_hierarchy_violation);
      check_bool "allow rule" true b.Ast.allow;
      check_bool "controller 2" true (b.Ast.controller = Ast.Controller_id 2)
  | Ok _ -> Alcotest.fail "expected two rules"

let test_xml_errors () =
  check_bool "mismatched close" true
    (Result.is_error (Parse.xml "<Policy><Cache name=\"X\"/></Oops>"));
  check_bool "garbage" true (Result.is_error (Parse.xml "not xml at all"))

(* --- Engine evaluation --- *)

let base_query =
  { Ast.q_controller = 1;
    q_trigger = `External;
    q_cache = "LINKSDB";
    q_op = Event.Update;
    q_key = "l1";
    q_value = "down";
    q_destination = `Local }

let test_engine_first_match () =
  let engine =
    Engine.create
      [ Ast.rule ~name:"allow-ctrl1" ~allow:true ~controller:(Ast.Controller_id 1)
          ~cache:"LINKSDB" ();
        Ast.rule ~name:"deny-all" ~cache:"LINKSDB" () ]
  in
  (match Engine.check engine base_query with
  | Engine.Allowed -> ()
  | Engine.Denied _ -> Alcotest.fail "allow rule should win (first match)");
  match Engine.check engine { base_query with Ast.q_controller = 2 } with
  | Engine.Denied r -> Alcotest.(check string) "deny rule" "deny-all" r.Ast.name
  | Engine.Allowed -> Alcotest.fail "controller 2 should be denied"

let test_engine_default_allow () =
  let engine = Engine.create [ Ast.rule ~cache:"FLOWSDB" () ] in
  match Engine.check engine base_query with
  | Engine.Allowed -> ()
  | Engine.Denied _ -> Alcotest.fail "non-matching cache must default-allow"

let test_engine_trigger_and_dest () =
  let engine =
    Engine.create
      [ Ast.rule ~name:"internal-only" ~trigger:Ast.Internal_only
          ~cache:"LINKSDB" ();
        Ast.rule ~name:"remote-only" ~destination:Ast.Remote_only
          ~cache:"FLOWSDB" () ]
  in
  check_bool "external passes internal-only rule" true
    (Engine.check engine base_query = Engine.Allowed);
  check_bool "internal denied" true
    (match Engine.check engine { base_query with Ast.q_trigger = `Internal } with
    | Engine.Denied r -> r.Ast.name = "internal-only"
    | Engine.Allowed -> false);
  let flow_q = { base_query with Ast.q_cache = "FLOWSDB" } in
  check_bool "local passes remote-only" true
    (Engine.check engine flow_q = Engine.Allowed);
  check_bool "remote denied" true
    (Engine.check engine { flow_q with Ast.q_destination = `Remote }
    <> Engine.Allowed)

let test_engine_flow_checks () =
  let bad_match = { Of_match.wildcard_all with Of_match.tp_dst = Some 80 } in
  let bad_flow = Of_message.flow_mod bad_match [ Of_action.Output 1 ] in
  let drop_flow =
    Of_message.flow_mod (Of_match.l2_dst ~dst:(Jury_packet.Addr.Mac.of_host_index 1)) []
  in
  let engine =
    Engine.create
      [ Ast.rule ~name:"hier" ~cache:"FLOWSDB" ~entry:Ast.Flow_hierarchy_violation ();
        Ast.rule ~name:"nodrop" ~cache:"FLOWSDB" ~entry:Ast.Flow_drops_packets () ]
  in
  let q value = { base_query with Ast.q_cache = "FLOWSDB"; q_value = value } in
  check_bool "bad hierarchy denied" true
    (match Engine.check engine (q (Values.Flow.value bad_flow)) with
    | Engine.Denied r -> r.Ast.name = "hier"
    | Engine.Allowed -> false);
  check_bool "drop rule denied" true
    (match Engine.check engine (q (Values.Flow.value drop_flow)) with
    | Engine.Denied r -> r.Ast.name = "nodrop"
    | Engine.Allowed -> false);
  let good = Of_message.flow_mod (Of_match.l2_dst ~dst:(Jury_packet.Addr.Mac.of_host_index 1))
      [ Of_action.Output 2 ] in
  check_bool "good flow passes" true
    (Engine.check engine (q (Values.Flow.value good)) = Engine.Allowed)

let test_check_all () =
  let engine = Engine.create [ Ast.rule ~name:"d" ~cache:"LINKSDB" () ] in
  let qs =
    [ base_query;
      { base_query with Ast.q_cache = "FLOWSDB" };
      { base_query with Ast.q_key = "l2" } ]
  in
  check_int "two violations" 2 (List.length (Engine.check_all engine qs))

let test_add_rule_and_count () =
  let engine = Engine.create [] in
  check_int "empty" 0 (Engine.rule_count engine);
  Engine.add_rule engine (Ast.rule ());
  check_int "one" 1 (Engine.rule_count engine);
  check_bool "denies now" true (Engine.check engine base_query <> Engine.Allowed)

(* --- First-match precedence across buckets (regression) --- *)

(* The headline bug: the engine used to scan the cache-specific bucket
   to exhaustion before any cache-wildcard rule, so a wildcard deny
   inserted *before* a cache-specific allow was silently bypassed. *)
let test_wildcard_before_specific () =
  let engine =
    Engine.create
      [ Ast.rule ~name:"deny-everything" ();  (* cache wildcard, first *)
        Ast.rule ~name:"allow-links" ~allow:true ~cache:"LINKSDB" () ]
  in
  (match Engine.check engine base_query with
  | Engine.Denied r ->
      Alcotest.(check string) "wildcard deny wins" "deny-everything"
        r.Ast.name
  | Engine.Allowed ->
      Alcotest.fail
        "cache-specific allow bypassed an earlier wildcard deny");
  (* And the compiler must reproduce the fixed semantics. *)
  match Compiled.check (Engine.compiled engine) base_query with
  | Compiled.Denied r ->
      Alcotest.(check string) "compiled agrees" "deny-everything" r.Ast.name
  | Compiled.Allowed -> Alcotest.fail "compiled diverged from interpreter"

let test_deny_then_allow_order () =
  (* Specific deny before wildcard allow: deny wins; swapped, allow
     wins. Pure insertion order, wherever the rules are bucketed. *)
  let deny = Ast.rule ~name:"deny-links" ~cache:"LINKSDB" () in
  let allow = Ast.rule ~name:"allow-all" ~allow:true () in
  (match Engine.check (Engine.create [ deny; allow ]) base_query with
  | Engine.Denied r -> Alcotest.(check string) "deny first" "deny-links" r.Ast.name
  | Engine.Allowed -> Alcotest.fail "first-inserted deny must win");
  match Engine.check (Engine.create [ allow; deny ]) base_query with
  | Engine.Allowed -> ()
  | Engine.Denied _ -> Alcotest.fail "first-inserted allow must win"

let test_empty_bucket_falls_through () =
  (* No bucket for the queried cache: wildcard rules still decide, and
     a cache that matches nothing still default-allows. *)
  let engine =
    Engine.create [ Ast.rule ~name:"wild" ~trigger:Ast.External_only () ]
  in
  (match Engine.check engine { base_query with Ast.q_cache = "SWITCHDB" } with
  | Engine.Denied r -> Alcotest.(check string) "wildcard" "wild" r.Ast.name
  | Engine.Allowed -> Alcotest.fail "wildcard must apply to unbucketed cache");
  let specific = Engine.create [ Ast.rule ~cache:"FLOWSDB" () ] in
  check_bool "no rule matches -> allowed" true
    (Engine.check specific { base_query with Ast.q_cache = "SWITCHDB" }
    = Engine.Allowed)

let test_add_rule_appends_at_lowest_precedence () =
  let engine = Engine.create [ Ast.rule ~name:"first" () ] in
  Engine.add_rule engine (Ast.rule ~name:"late-allow" ~allow:true ());
  check_int "count" 2 (Engine.rule_count engine);
  Alcotest.(check (list string)) "insertion order" [ "first"; "late-allow" ]
    (List.map (fun (r : Ast.rule) -> r.Ast.name) (Engine.rules engine));
  match Engine.check engine base_query with
  | Engine.Denied r -> Alcotest.(check string) "earlier deny wins" "first" r.Ast.name
  | Engine.Allowed -> Alcotest.fail "appended allow must not jump the queue"

(* --- Cache-name normalisation --- *)

let test_mixed_case_cache () =
  (* DSL rule, mixed-case cache; hand-built query, another casing. *)
  let engine =
    match Engine.of_dsl "deny name=no-edges cache=EdgeDB" with
    | Ok e -> e
    | Error e -> Alcotest.failf "dsl: %s" e
  in
  let q = { base_query with Ast.q_cache = "edgeDb" } in
  (match Engine.check engine q with
  | Engine.Denied r -> Alcotest.(check string) "normalised" "no-edges" r.Ast.name
  | Engine.Allowed -> Alcotest.fail "cache casing must not defeat the rule");
  check_bool "compiled normalises too" true
    (match Compiled.check (Engine.compiled engine) q with
    | Compiled.Denied _ -> true
    | Compiled.Allowed -> false);
  (* Rule built straight from the record (bypassing the normalising
     smart constructor): the engine normalises at add_rule. *)
  let raw =
    Engine.create
      [ { Ast.name = "raw"; allow = false; controller = Ast.Any_controller;
          trigger = Ast.Any_trigger; cache = Some "LinksDB";
          operation = Ast.Any_op; entry = Ast.Entry_any;
          destination = Ast.Any_dest } ]
  in
  check_bool "record-literal rule found" true
    (Engine.check raw base_query <> Engine.Allowed)

(* --- Compiled structure --- *)

let test_compiled_equivalence_and_sharing () =
  let rules =
    [ Ast.rule ~name:"d0" ~controller:(Ast.Controller_id 1) ~cache:"LINKSDB" ();
      Ast.rule ~name:"a1" ~allow:true ~cache:"LINKSDB"
        ~operation:(Ast.Op_is Event.Update) ();
      Ast.rule ~name:"d2" ~cache:"FLOWSDB" ~entry:Ast.Flow_drops_packets ();
      Ast.rule ~name:"d3" ~trigger:Ast.Internal_only () ]
  in
  let engine = Engine.create rules in
  let compiled = Engine.compiled engine in
  check_bool "memoised" true (Engine.compiled engine == compiled);
  let queries =
    [ base_query;
      { base_query with Ast.q_controller = 2 };
      { base_query with Ast.q_cache = "FLOWSDB" };
      { base_query with Ast.q_trigger = `Internal; Ast.q_cache = "ARPDB" };
      { base_query with Ast.q_op = Event.Delete } ]
  in
  List.iter
    (fun q ->
      match (Engine.check engine q, Compiled.check compiled q) with
      | Engine.Allowed, Compiled.Allowed -> ()
      | Engine.Denied r1, Compiled.Denied r2 ->
          check_bool "physically identical rule" true (r1 == r2)
      | _ -> Alcotest.failf "verdicts diverge on %s" q.Ast.q_cache)
    queries;
  let st = Compiled.stats compiled in
  check_int "rules counted" 4 st.Compiled.st_rules;
  check_int "cache branches" 2 st.Compiled.st_cache_branches;
  check_bool "sharing collapses leaves" true
    (st.Compiled.st_distinct_leaves <= st.Compiled.st_leaves);
  (* add_rule invalidates the memo and the recompiled trie agrees. *)
  Engine.add_rule engine (Ast.rule ~name:"d4" ~cache:"ARPDB" ());
  let recompiled = Engine.compiled engine in
  check_bool "recompiled" true (recompiled != compiled);
  let q = { base_query with Ast.q_cache = "ARPDB" } in
  check_bool "new rule visible" true
    (Compiled.check recompiled q <> Compiled.Allowed
    && Engine.check engine q <> Engine.Allowed)

(* --- Pattern differential: segment matchers vs naive reference --- *)

(* Exponential-time but obviously correct recursive glob. *)
let rec naive_match p s pi si =
  if pi = String.length p then si = String.length s
  else
    match p.[pi] with
    | '*' ->
        naive_match p s (pi + 1) si
        || (si < String.length s && naive_match p s pi (si + 1))
    | '?' -> si < String.length s && naive_match p s (pi + 1) (si + 1)
    | c -> si < String.length s && s.[si] = c && naive_match p s (pi + 1) (si + 1)

let test_pattern_differential () =
  let module Gen = Jury_check.Gen in
  let module Pg = Jury_check.Policy_gen in
  for seed = 0 to 499 do
    let p, s =
      Gen.run ~seed (fun rng -> (Pg.pattern_source rng, Pg.subject rng))
    in
    let compiled = Pattern.matches (Pattern.compile p) s in
    let reference = naive_match p s 0 0 in
    if compiled <> reference then
      Alcotest.failf
        "pattern %S vs %S: compiled=%b reference=%b (seed %d)" p s compiled
        reference seed
  done;
  (* Hand-picked anchors and overlaps the fuzz alphabet may miss. *)
  List.iter
    (fun (p, s, expect) ->
      check_bool (Printf.sprintf "%S ~ %S" p s) expect
        (Pattern.matches (Pattern.compile p) s))
    [ ("**", "", true);
      ("a*a", "a", false);          (* anchors must not overlap *)
      ("*ab*ab*", "abab", true);    (* floating segments in order *)
      ("*ab*ab*", "aba", false);
      ("?*", "", false);
      ("a?*b", "axyb", true);
      ("*?", "x", true) ]

let prop_star_matches_everything =
  QCheck.Test.make ~name:"'*' matches any string" ~count:200
    QCheck.printable_string
    (fun s -> Pattern.matches (Pattern.compile "*") s)

let prop_exact_self_match =
  QCheck.Test.make ~name:"literal pattern matches itself" ~count:200
    QCheck.printable_string
    (fun s ->
      (* Avoid glob metacharacters in the generated string. *)
      let clean =
        String.map (fun c -> if c = '*' || c = '?' then 'x' else c) s
      in
      Pattern.matches (Pattern.compile clean) clean)

let suite =
  [ ("glob patterns", `Quick, test_glob);
    ("dsl line", `Quick, test_dsl_line);
    ("dsl document", `Quick, test_dsl_document);
    ("dsl errors", `Quick, test_dsl_errors);
    ("xml fig3 policy", `Quick, test_xml_fig3);
    ("xml multiple + checks", `Quick, test_xml_multiple_and_checks);
    ("xml errors", `Quick, test_xml_errors);
    ("engine first match", `Quick, test_engine_first_match);
    ("engine default allow", `Quick, test_engine_default_allow);
    ("engine trigger/destination", `Quick, test_engine_trigger_and_dest);
    ("engine flow checks", `Quick, test_engine_flow_checks);
    ("check_all", `Quick, test_check_all);
    ("add_rule", `Quick, test_add_rule_and_count);
    ("wildcard before specific (regression)", `Quick,
     test_wildcard_before_specific);
    ("deny-then-allow order", `Quick, test_deny_then_allow_order);
    ("empty bucket falls through", `Quick, test_empty_bucket_falls_through);
    ("add_rule precedence", `Quick, test_add_rule_appends_at_lowest_precedence);
    ("mixed-case cache names", `Quick, test_mixed_case_cache);
    ("compiled equivalence + sharing", `Quick,
     test_compiled_equivalence_and_sharing);
    ("pattern differential vs naive", `Quick, test_pattern_differential);
    QCheck_alcotest.to_alcotest prop_star_matches_everything;
    QCheck_alcotest.to_alcotest prop_exact_self_match ]
