(* Tests for the fault catalog: every paper scenario must be detected
   by JURY with the faulty replica among the suspects. *)

module Scenarios = Jury_faults.Scenarios
module Runner = Jury_faults.Runner
module Injector = Jury_faults.Injector
module Types = Jury_controller.Types

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let scenario_case (s : Scenarios.t) =
  ( Printf.sprintf "%s detected (%s)" s.Scenarios.name s.Scenarios.expected_name,
    `Slow,
    fun () ->
      let r = Runner.run ~switches:10 s in
      if not r.Runner.detected then
        Alcotest.failf "scenario %s missed; other alarms: %d"
          s.Scenarios.name
          (List.length r.Runner.other_alarms);
      check_bool "has detection time" true (r.Runner.detection_time_ms <> None)
  )

let test_catalog_complete () =
  check_int "nineteen scenarios" 19 (List.length Scenarios.all);
  List.iter
    (fun name ->
      check_bool ("find " ^ name) true (Scenarios.find name <> None))
    Scenarios.names;
  check_bool "unknown is None" true (Scenarios.find "nope" = None);
  (* every class is represented *)
  let klasses = List.map (fun s -> s.Scenarios.klass) Scenarios.all in
  check_bool "T1 present" true (List.mem `T1 klasses);
  check_bool "T2 present" true (List.mem `T2 klasses);
  check_bool "T3 present" true (List.mem `T3 klasses)

let test_injector_mutators () =
  let dpid = Jury_openflow.Of_types.Dpid.of_int 1 in
  let trigger = Types.Internal { app = "t"; work = Types.Proactive [] } in
  let cache_write =
    Types.Cache_write
      { cache = "LINKSDB"; op = Jury_store.Event.Update; key = "k"; value = "up" }
  in
  let net_send =
    Types.Network_send
      { dpid;
        payload =
          Jury_openflow.Of_message.Flow_mod
            (Jury_openflow.Of_message.flow_mod
               Jury_openflow.Of_match.wildcard_all
               [ Jury_openflow.Of_action.Output 1 ]) }
  in
  let actions = [ cache_write; net_send ] in
  check_int "drop cache writes" 1
    (List.length (Injector.drop_cache_writes_to ~cache:"LINKSDB" trigger actions));
  check_int "drop network" 1
    (List.length (Injector.drop_network_sends trigger actions));
  (match Injector.corrupt_cache_values_to ~cache:"LINKSDB" ~value:"down" trigger actions with
  | [ Types.Cache_write { value = "down"; _ }; _ ] -> ()
  | _ -> Alcotest.fail "corruption failed");
  (match Injector.blackhole_flow_mods trigger actions with
  | [ _; Types.Network_send { payload = Jury_openflow.Of_message.Flow_mod f; _ } ] ->
      check_bool "blackholed" true (f.Jury_openflow.Of_message.actions = [])
  | _ -> Alcotest.fail "blackhole failed");
  check_int "compose" 0
    (List.length
       (Injector.compose
          [ Injector.drop_cache_writes_to ~cache:"LINKSDB";
            Injector.drop_network_sends ]
          trigger actions))

let test_detection_attribution () =
  (* The runner must attribute the alarm to the armed replica, not just
     raise any alarm. *)
  let r = Runner.run ~switches:8 ~faulty:3 Scenarios.odl_flowmod_drop in
  check_bool "detected" true r.Runner.detected;
  List.iter
    (fun (a : Jury.Alarm.t) ->
      check_bool "faulty in suspects" true (List.mem 3 a.Jury.Alarm.suspects))
    r.Runner.matching_alarms

let test_detection_under_m2 () =
  (* The paper's worst case: full replication with two timing-faulty
     replicas in addition to the scenario's fault. *)
  let r =
    Runner.run ~switches:8 ~extra_slow:[ 5; 6 ] Scenarios.undesirable_flowmod
  in
  check_bool "detected despite slow replicas" true r.Runner.detected

let suite =
  [ ("catalog complete", `Quick, test_catalog_complete);
    ("injector mutators", `Quick, test_injector_mutators);
    ("detection attribution", `Slow, test_detection_attribution);
    ("detection with m=2", `Slow, test_detection_under_m2) ]
  @ List.map scenario_case Scenarios.all
