(* Tests for the statistics helpers the bench harness relies on. *)

module Summary = Jury_stats.Summary
module Cdf = Jury_stats.Cdf
module Histogram = Jury_stats.Histogram
module Rate = Jury_stats.Rate
module Table = Jury_stats.Table

module Str_contains = struct
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    nl = 0 || go 0
end

let checkf = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_summary_basic () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4.; 5. ] in
  checkf "mean" 3. s.Summary.mean;
  checkf "min" 1. s.Summary.min;
  checkf "max" 5. s.Summary.max;
  checkf "p50" 3. s.Summary.p50;
  check_int "n" 5 s.Summary.n

let test_summary_percentile () =
  let xs = Array.init 101 float_of_int in
  checkf "p0" 0. (Summary.percentile xs 0.);
  checkf "p100" 100. (Summary.percentile xs 1.);
  checkf "p50" 50. (Summary.percentile xs 0.5);
  checkf "p95" 95. (Summary.percentile xs 0.95);
  (* interpolation *)
  checkf "interp" 0.5 (Summary.percentile [| 0.; 1. |] 0.5)

let test_summary_stddev () =
  checkf "constant" 0. (Summary.stddev [| 4.; 4.; 4. |]);
  let s = Summary.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_bool "known stddev" true (abs_float (s -. 2.138) < 0.01)

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty")
    (fun () -> ignore (Summary.of_array [||]))

let test_cdf_basic () =
  let cdf = Cdf.of_samples [| 3.; 1.; 2.; 2. |] in
  let pts = Cdf.points cdf in
  check_int "distinct points" 3 (List.length pts);
  checkf "first x" 1. (List.hd pts).Cdf.x;
  checkf "first p" 0.25 (List.hd pts).Cdf.p;
  checkf "last p" 1.0 (List.nth pts 2).Cdf.p;
  checkf "dup collapsed p" 0.75 (List.nth pts 1).Cdf.p

let test_cdf_queries () =
  let cdf = Cdf.of_samples (Array.init 100 (fun i -> float_of_int i)) in
  checkf "quantile 0.5" 49. (Cdf.value_at cdf 0.5);
  checkf "fraction below" 0.5 (Cdf.fraction_below cdf 49.);
  checkf "fraction below min" 0. (Cdf.fraction_below cdf (-1.))

let test_cdf_downsample () =
  let cdf = Cdf.of_samples (Array.init 1000 float_of_int) in
  let small = Cdf.downsample cdf 10 in
  check_int "downsampled" 10 (List.length (Cdf.points small));
  let pts = Cdf.points small in
  checkf "keeps first" 0. (List.hd pts).Cdf.x;
  checkf "keeps last" 999. (List.nth pts 9).Cdf.x

let test_cdf_edge_cases () =
  (* value_at on an empty CDF refuses rather than inventing a value. *)
  Alcotest.check_raises "empty value_at"
    (Invalid_argument "Cdf.value_at: empty CDF") (fun () ->
      ignore (Cdf.value_at (Cdf.of_samples [||]) 0.5));
  (* k=1 must not divide by zero: it keeps the p=1 point. *)
  let cdf = Cdf.of_samples (Array.init 100 float_of_int) in
  let one = Cdf.points (Cdf.downsample cdf 1) in
  check_int "k=1 one point" 1 (List.length one);
  checkf "k=1 keeps last x" 99. (List.hd one).Cdf.x;
  checkf "k=1 keeps p=1" 1. (List.hd one).Cdf.p;
  (* fraction_below at exact sample boundaries is inclusive. *)
  let cdf = Cdf.of_samples [| 1.; 2.; 2.; 3. |] in
  checkf "at min" 0.25 (Cdf.fraction_below cdf 1.);
  checkf "below dup run" 0.25 (Cdf.fraction_below cdf 1.999);
  checkf "at dup run" 0.75 (Cdf.fraction_below cdf 2.);
  checkf "at max" 1. (Cdf.fraction_below cdf 3.);
  checkf "below min" 0. (Cdf.fraction_below cdf 0.999)

let test_histogram () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add_many h [| 1.; 3.; 5.; 7.; 9.; 11.; -1. |];
  check_int "total" 7 (Histogram.total h);
  let counts = Histogram.counts h in
  check_int "first bin catches underflow" 2 counts.(0);
  check_int "last bin catches overflow" 2 counts.(4);
  let norm = Histogram.normalized h in
  checkf "normalized sums to 1" 1.
    (Array.fold_left ( +. ) 0. norm)

let test_rate () =
  let r = Rate.create ~window_sec:1.0 in
  Rate.tick r ~at_sec:0.5 ();
  Rate.tick r ~at_sec:0.7 ();
  Rate.tick r ~at_sec:2.5 ~count:4 ();
  check_int "total" 6 (Rate.total r);
  let series = Rate.series r in
  check_int "covers empty windows" 3 (Array.length series);
  checkf "first window rate" 2. (snd series.(0));
  checkf "empty window" 0. (snd series.(1));
  checkf "last window rate" 4. (snd series.(2));
  checkf "peak" 4. (Rate.peak_rate r);
  checkf "mean" 2. (Rate.mean_rate r)

let test_rate_negative_timestamps () =
  let r = Rate.create ~window_sec:1.0 in
  (* Truncation toward zero would merge these into one window. *)
  Rate.tick r ~at_sec:(-0.5) ();
  Rate.tick r ~at_sec:0.5 ();
  let series = Rate.series r in
  check_int "windows either side of zero" 2 (Array.length series);
  checkf "negative window starts at -1" (-1.) (fst series.(0));
  checkf "negative window rate" 1. (snd series.(0));
  checkf "positive window rate" 1. (snd series.(1));
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Rate.tick: timestamp must be finite") (fun () ->
      Rate.tick r ~at_sec:Float.nan ());
  Alcotest.check_raises "infinity rejected"
    (Invalid_argument "Rate.tick: timestamp must be finite") (fun () ->
      Rate.tick r ~at_sec:Float.infinity ())

let test_rate_huge_span () =
  let r = Rate.create ~window_sec:1.0 in
  Rate.tick r ~at_sec:0.5 ();
  Rate.tick r ~at_sec:0.25e9 ~count:3 ();
  (* A dense series would need 250 M rows; the sparse fallback returns
     just the populated windows, in order. *)
  let series = Rate.series r in
  check_int "sparse rows only" 2 (Array.length series);
  checkf "first populated window" 0. (fst series.(0));
  checkf "second populated window" 0.25e9 (fst series.(1));
  checkf "peak over sparse series" 3. (Rate.peak_rate r);
  check_int "total" 4 (Rate.total r)

let test_table () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  check_int "rows" 2 (Table.row_count t);
  let out = Format.asprintf "%a" Table.pp t in
  check_bool "aligned" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.length >= 4);
  Alcotest.(check string) "pct" "11.3%" (Table.cell_pct 0.113)

module Ascii_plot = Jury_stats.Ascii_plot

let test_ascii_plot_cdf () =
  let cdf = Cdf.of_samples (Array.init 100 float_of_int) in
  let out = Ascii_plot.cdf ~x_label:"ms" [ ("series-a", cdf) ] in
  check_bool "draws axis" true (String.length out > 200);
  check_bool "legend present" true
    (String.length out > 0
    && Str_contains.contains out "series-a");
  check_bool "x label present" true (Str_contains.contains out "(ms)");
  Alcotest.(check string) "empty input" "  (no samples)\n"
    (Ascii_plot.cdf [ ])

let test_ascii_plot_xy () =
  let out =
    Ascii_plot.xy ~x_label:"rate" ~y_label:"tput"
      [ ("up", [ (0., 0.); (10., 10.) ]); ("flat", [ (0., 5.); (10., 5.) ]) ]
  in
  check_bool "renders" true (String.length out > 200);
  check_bool "both legends" true
    (Str_contains.contains out "up" && Str_contains.contains out "flat")

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_exclusive 1000.))
    (fun xs ->
      let cdf = Cdf.of_samples (Array.of_list xs) in
      let pts = Cdf.points cdf in
      let rec mono = function
        | a :: (b :: _ as rest) ->
            a.Cdf.x < b.Cdf.x && a.Cdf.p < b.Cdf.p && mono rest
        | _ -> true
      in
      mono pts
      && (match List.rev pts with
         | last :: _ -> abs_float (last.Cdf.p -. 1.0) < 1e-9
         | [] -> false))

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_exclusive 100.))
              (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let arr = Array.of_list xs in
      let v = Summary.percentile arr q in
      let lo = Array.fold_left min arr.(0) arr in
      let hi = Array.fold_left max arr.(0) arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  [ ("summary basic", `Quick, test_summary_basic);
    ("summary percentile", `Quick, test_summary_percentile);
    ("summary stddev", `Quick, test_summary_stddev);
    ("summary empty", `Quick, test_summary_empty);
    ("cdf basic", `Quick, test_cdf_basic);
    ("cdf queries", `Quick, test_cdf_queries);
    ("cdf downsample", `Quick, test_cdf_downsample);
    ("cdf edge cases", `Quick, test_cdf_edge_cases);
    ("histogram", `Quick, test_histogram);
    ("rate windows", `Quick, test_rate);
    ("rate negative timestamps", `Quick, test_rate_negative_timestamps);
    ("rate huge span stays sparse", `Quick, test_rate_huge_span);
    ("table rendering", `Quick, test_table);
    ("ascii plot cdf", `Quick, test_ascii_plot_cdf);
    ("ascii plot xy", `Quick, test_ascii_plot_xy);
    QCheck_alcotest.to_alcotest prop_cdf_monotone;
    QCheck_alcotest.to_alcotest prop_percentile_bounds ]
