(* Tests for JURY proper: snapshots, encapsulation, the validator's
   consensus/sanity/policy logic (fed synthetic responses), and the
   full deployment on a live cluster. *)

open Jury_sim
module Types = Jury_controller.Types
module Values = Jury_controller.Values
module Event = Jury_store.Event
module Names = Jury_store.Cache_names
module Of_match = Jury_openflow.Of_match
module Of_message = Jury_openflow.Of_message
module Of_action = Jury_openflow.Of_action
module Dpid = Jury_openflow.Of_types.Dpid
module Mac = Jury_packet.Addr.Mac
module Snapshot = Jury.Snapshot
module Response = Jury.Response
module Validator = Jury.Validator
module Alarm = Jury.Alarm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Snapshot --- *)

let ev ?(origin = 0) ?(seq = 1) ?(cache = "HOSTDB") ?(key = "k") ?(value = "v")
    () =
  { Event.cache; op = Event.Create; key; value; origin; seq; taint = None }

let test_snapshot_order_insensitive () =
  let e1 = ev ~seq:1 () and e2 = ev ~seq:2 ~key:"other" () in
  let a = Snapshot.observe (Snapshot.observe Snapshot.pristine e1) e2 in
  let b = Snapshot.observe (Snapshot.observe Snapshot.pristine e2) e1 in
  check_bool "order insensitive" true (Snapshot.equal a b);
  check_int "count" 2 (Snapshot.count a)

let test_snapshot_content_sensitive () =
  let a = Snapshot.observe Snapshot.pristine (ev ~value:"x" ()) in
  let b = Snapshot.observe Snapshot.pristine (ev ~value:"y" ()) in
  check_bool "different events differ" false (Snapshot.equal a b);
  check_bool "pristine differs" false (Snapshot.equal a Snapshot.pristine)

(* --- Encapsulation --- *)

let test_encap_roundtrip () =
  let frame =
    Jury_packet.Frame.tcp_packet
      ~src:(Mac.of_host_index 0, Jury_packet.Addr.Ipv4.of_host_index 0)
      ~dst:(Mac.of_host_index 1, Jury_packet.Addr.Ipv4.of_host_index 1)
      ~src_port:5 ~dst_port:6 ()
  in
  let inner =
    Of_message.make ~xid:3
      (Of_message.Packet_in
         { buffer_id = None; in_port = 2; reason = Of_message.No_match; frame })
  in
  let outer = Jury.Encap.encapsulate inner in
  (match Jury.Encap.decapsulate outer with
  | Some inner' -> check_bool "roundtrip" true (Of_message.equal inner inner')
  | None -> Alcotest.fail "decap failed");
  check_bool "overhead positive" true (Jury.Encap.overhead_bytes inner > 0);
  (* A normal PACKET_IN is not an encapsulation. *)
  check_bool "plain not decapsulated" true
    (Jury.Encap.decapsulate
       { Of_message.buffer_id = None; in_port = 1;
         reason = Of_message.No_match; frame }
    = None)

(* --- Validator with synthetic responses --- *)

let taint = Types.Taint.external_trigger ~primary:0 ~serial:1

let flow_for dpid =
  Of_message.flow_mod ~priority:100
    (Of_match.l2_pair ~src:(Mac.of_host_index 0) ~dst:(Mac.of_host_index 1))
    [ Of_action.Output 2 ]
  |> fun fmv -> (dpid, fmv)

let response_actions dpid =
  let d, fmv = flow_for dpid in
  [ Types.Cache_write
      { cache = Names.flowsdb;
        op = Event.Create;
        key = Values.Flow.key d fmv.Of_message.fm_match ~priority:100;
        value = Values.Flow.value fmv };
    Types.Network_send { dpid = d; payload = Of_message.Flow_mod fmv } ]

let mk_validator ?(k = 2) ?policies ?(timeout = Time.ms 100) ?retransmit
    ?degraded_quorum () =
  let engine = Engine.create () in
  let cfg =
    Jury.Jury_config.validator
      ~ack_peers_of:(fun o -> [ (o + 1) mod 4; (o + 2) mod 4 ])
      ~master_lookup:(fun _ -> Some 0)
      (Jury.Jury_config.make ?policies ?retransmit ?degraded_quorum ~k
         ~timeout ())
  in
  (engine, Validator.create engine cfg)

let deliver v ~controller ~snapshot body =
  Validator.deliver v
    { Response.controller; taint; snapshot; sent_at = Time.zero; term = 0; body }

let cache_event_of_action ~origin = function
  | Types.Cache_write { cache; op; key; value } ->
      { Event.cache; op; key; value; origin; seq = 1;
        taint = Some (Types.Taint.to_string taint) }
  | Types.Network_send _ -> invalid_arg "not a cache write"

let feed_happy_path engine v =
  (* primary 0, secondaries 1,2 all agree; cache event acked. *)
  let dpid = Dpid.of_int 1 in
  let actions = response_actions dpid in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  deliver v ~controller:2 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  let cache_ev = cache_event_of_action ~origin:0 (List.hd actions) in
  deliver v ~controller:0 ~snapshot:snap (Response.Cache_update cache_ev);
  deliver v ~controller:1 ~snapshot:snap (Response.Cache_update cache_ev);
  deliver v ~controller:2 ~snapshot:snap (Response.Cache_update cache_ev);
  let _, fmv = flow_for dpid in
  deliver v ~controller:0 ~snapshot:snap
    (Response.Network_write { dpid; flow = fmv });
  Engine.run engine

let test_validator_happy_path () =
  let engine, v = mk_validator () in
  feed_happy_path engine v;
  check_int "decided early (completeness)" 1 (Validator.decided_count v);
  check_int "no faults" 0 (Validator.fault_count v);
  match Validator.verdicts v with
  | [ a ] ->
      check_bool "valid" true (a.Alarm.verdict = Alarm.Ok_valid);
      check_bool "fast decision" true
        Time.(Alarm.detection_time a < Time.ms 100)
  | _ -> Alcotest.fail "one verdict"

let test_validator_consensus_mismatch () =
  let engine, v = mk_validator () in
  let dpid = Dpid.of_int 1 in
  let good = response_actions dpid in
  let evil =
    List.map
      (function
        | Types.Network_send { dpid; payload = Of_message.Flow_mod fmv } ->
            Types.Network_send
              { dpid; payload = Of_message.Flow_mod { fmv with Of_message.actions = [] } }
        | a -> a)
      good
  in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions = evil });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions = good });
  deliver v ~controller:2 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions = good });
  Engine.run engine;
  check_int "fault raised" 1 (Validator.fault_count v);
  match Validator.alarms v with
  | [ a ] ->
      check_bool "consensus mismatch" true
        (match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Consensus_mismatch fs
        | _ -> false);
      Alcotest.(check (list int)) "primary suspected" [ 0 ] a.Alarm.suspects
  | _ -> Alcotest.fail "one alarm"

let feed_cache_and_network v ~actions ~dpid =
  let snap = Snapshot.pristine in
  let cache_ev = cache_event_of_action ~origin:0 (List.hd actions) in
  deliver v ~controller:0 ~snapshot:snap (Response.Cache_update cache_ev);
  deliver v ~controller:1 ~snapshot:snap (Response.Cache_update cache_ev);
  deliver v ~controller:2 ~snapshot:snap (Response.Cache_update cache_ev);
  let _, fmv = flow_for dpid in
  deliver v ~controller:0 ~snapshot:snap
    (Response.Network_write { dpid; flow = fmv })

let test_validator_dissenting_secondary () =
  let engine, v = mk_validator () in
  let dpid = Dpid.of_int 1 in
  let good = response_actions dpid in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions = good });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions = good });
  deliver v ~controller:2 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions = [] });
  feed_cache_and_network v ~actions:good ~dpid;
  Engine.run engine;
  match Validator.alarms v with
  | [ a ] -> Alcotest.(check (list int)) "dissenter suspected" [ 2 ] a.Alarm.suspects
  | _ -> Alcotest.fail "expected dissent alarm"

let test_validator_state_aware_excuses () =
  let engine, v = mk_validator () in
  let dpid = Dpid.of_int 1 in
  let good = response_actions dpid in
  let prim_snap = Snapshot.pristine in
  let stale_snap = Snapshot.observe Snapshot.pristine (ev ()) in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:prim_snap
    (Response.Execution { role = `Primary; actions = good });
  (* Both secondaries answered differently BUT from a different state:
     state-aware consensus must not raise a false alarm. *)
  deliver v ~controller:1 ~snapshot:stale_snap
    (Response.Execution { role = `Secondary; actions = [] });
  deliver v ~controller:2 ~snapshot:stale_snap
    (Response.Execution { role = `Secondary; actions = [] });
  feed_cache_and_network v ~actions:good ~dpid:(Dpid.of_int 1);
  Engine.run engine;
  check_int "no fault" 0 (Validator.fault_count v);
  check_int "counted unverifiable" 1 (Validator.unverifiable_count v)

let test_validator_naive_majority_false_alarm () =
  (* Same scenario with state_aware=false: the naive engine flags the
     primary — the ablation's false-positive mechanism. *)
  let engine = Engine.create () in
  let cfg =
    Jury.Jury_config.validator
      ~ack_peers_of:(fun _ -> [])
      (Jury.Jury_config.make ~state_aware:false ~k:2 ~timeout:(Time.ms 100)
         ())
  in
  let v = Validator.create engine cfg in
  let dpid = Dpid.of_int 1 in
  let good = response_actions dpid in
  let stale_snap = Snapshot.observe Snapshot.pristine (ev ()) in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:Snapshot.pristine
    (Response.Execution { role = `Primary; actions = good });
  deliver v ~controller:1 ~snapshot:stale_snap
    (Response.Execution { role = `Secondary; actions = [] });
  deliver v ~controller:2 ~snapshot:stale_snap
    (Response.Execution { role = `Secondary; actions = [] });
  Engine.run engine;
  check_int "naive majority misfires" 1 (Validator.fault_count v)

let test_validator_nondet_rule () =
  let engine, v = mk_validator () in
  let snap = Snapshot.pristine in
  let variant port =
    [ Types.Network_send
        { dpid = Dpid.of_int 1;
          payload =
            Of_message.Packet_out
              { po_buffer_id = None; po_in_port = 1;
                po_actions = [ Of_action.Output port ]; po_frame = None } } ]
  in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions = variant 1 });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions = variant 2 });
  deliver v ~controller:2 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions = variant 3 });
  Engine.run engine;
  check_int "no fault" 0 (Validator.fault_count v);
  match Validator.verdicts v with
  | [ a ] ->
      check_bool "labelled non-deterministic" true
        (a.Alarm.verdict = Alarm.Ok_non_deterministic)
  | _ -> Alcotest.fail "one verdict"

let test_validator_timeout_missing_primary () =
  let engine, v = mk_validator () in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:1 ~snapshot:Snapshot.pristine
    (Response.Execution { role = `Secondary; actions = [] });
  Engine.run engine;
  match Validator.alarms v with
  | [ a ] ->
      check_bool "timeout fault" true
        (a.Alarm.verdict = Alarm.Faulty [ Alarm.Response_timeout ]);
      Alcotest.(check (list int)) "primary suspected" [ 0 ] a.Alarm.suspects;
      check_bool "detected at timeout" true
        Time.(Alarm.detection_time a >= Time.ms 100)
  | _ -> Alcotest.fail "expected timeout alarm"

let test_validator_cache_without_network () =
  let engine, v = mk_validator ~k:0 () in
  let dpid = Dpid.of_int 1 in
  let actions = response_actions dpid in
  let cache_only =
    List.filter (function Types.Cache_write _ -> true | _ -> false) actions
  in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0 ~secondaries:[];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions = cache_only });
  deliver v ~controller:0 ~snapshot:snap
    (Response.Cache_update (cache_event_of_action ~origin:0 (List.hd actions)));
  Engine.run engine;
  match Validator.alarms v with
  | [ a ] ->
      check_bool "cache-without-network" true
        (match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Cache_without_network fs
        | _ -> false)
  | _ -> Alcotest.fail "expected T2 alarm"

let test_validator_network_without_cache () =
  (* A misbehaving controller writes straight to the network: the OVS
     interceptor mints a taint of its own, so the validator sees an
     orphan FLOW_MOD with neither execution record nor cache backing. *)
  let engine, v = mk_validator ~k:0 () in
  let dpid = Dpid.of_int 1 in
  let _, fmv = flow_for dpid in
  Validator.deliver v
    { Response.controller = 0;
      taint = Types.Taint.internal_trigger ~origin:0 ~seq:1_000_001;
      snapshot = Snapshot.pristine;
      sent_at = Time.zero;
      term = 0;
      body = Response.Network_write { dpid; flow = fmv } };
  Engine.run engine;
  match Validator.alarms v with
  | [ a ] ->
      check_bool "network-without-cache" true
        (match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Network_without_cache fs
        | _ -> false)
  | _ -> Alcotest.fail "expected bypass alarm"

let test_validator_cache_network_mismatch () =
  let engine, v = mk_validator ~k:0 () in
  let dpid = Dpid.of_int 1 in
  let actions = response_actions dpid in
  let _, fmv = flow_for dpid in
  let corrupted = { fmv with Of_message.actions = [] } in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0 ~secondaries:[];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions });
  deliver v ~controller:0 ~snapshot:snap
    (Response.Cache_update (cache_event_of_action ~origin:0 (List.hd actions)));
  deliver v ~controller:0 ~snapshot:snap
    (Response.Network_write { dpid; flow = corrupted });
  Engine.run engine;
  match Validator.alarms v with
  | [ a ] ->
      check_bool "mismatch" true
        (match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Cache_network_mismatch fs
        | _ -> false)
  | _ -> Alcotest.fail "expected mismatch alarm"

let test_validator_write_failure () =
  let engine, v = mk_validator ~k:0 () in
  let dpid = Dpid.of_int 1 in
  let actions = response_actions dpid in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0 ~secondaries:[];
  deliver v ~controller:0 ~snapshot:Snapshot.pristine
    (Response.Execution { role = `Primary; actions });
  deliver v ~controller:0 ~snapshot:Snapshot.pristine
    (Response.Write_failure
       { action = List.hd actions; reason = "failed to obtain lock" });
  Engine.run engine;
  check_int "fault" 1 (Validator.fault_count v);
  match Validator.alarms v with
  | [ a ] ->
      check_bool "lock failure reported as omission" true
        (match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Response_timeout fs
        | _ -> false);
      check_bool "detail mentions lock" true
        (String.length a.Alarm.detail > 0)
  | _ -> Alcotest.fail "expected alarm"

let test_validator_policy_check () =
  let policies =
    Jury_policy.Engine.create
      [ Jury_policy.Ast.rule ~name:"no-linksdb" ~cache:"LINKSDB" () ]
  in
  let engine, v = mk_validator ~k:0 ~policies () in
  let actions =
    [ Types.Cache_write
        { cache = Names.linksdb; op = Event.Update; key = "l"; value = "down" } ]
  in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0 ~secondaries:[];
  deliver v ~controller:0 ~snapshot:Snapshot.pristine
    (Response.Execution { role = `Primary; actions });
  deliver v ~controller:0 ~snapshot:Snapshot.pristine
    (Response.Cache_update (cache_event_of_action ~origin:0 (List.hd actions)));
  Engine.run engine;
  match Validator.alarms v with
  | [ a ] ->
      check_bool "policy violation" true
        (match a.Alarm.verdict with
        | Alarm.Faulty [ Alarm.Policy_violation "no-linksdb" ] -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected policy alarm"

let test_validator_internal_trigger () =
  (* Internal triggers have no registration and no secondaries: the
     validator creates the record from the first response. *)
  let engine, v = mk_validator ~k:0 () in
  let internal = Types.Taint.internal_trigger ~origin:3 ~seq:9 in
  let actions =
    [ Types.Cache_write
        { cache = Names.linksdb; op = Event.Delete; key = "l"; value = "" } ]
  in
  Validator.deliver v
    { Response.controller = 3; taint = internal; snapshot = Snapshot.pristine;
      sent_at = Time.zero;
      term = 0;
      body = Response.Execution { role = `Primary; actions } };
  Validator.deliver v
    { Response.controller = 3; taint = internal; snapshot = Snapshot.pristine;
      sent_at = Time.zero;
      term = 0;
      body =
        Response.Cache_update
          { Event.cache = Names.linksdb; op = Event.Delete; key = "l";
            value = ""; origin = 3; seq = 9;
            taint = Some (Types.Taint.to_string internal) } };
  Engine.run engine;
  check_int "decided" 1 (Validator.decided_count v);
  check_int "benign internal passes" 0 (Validator.fault_count v)

let test_validator_flush () =
  let engine, v = mk_validator () in
  ignore engine;
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1 ];
  check_int "pending" 1 (Validator.pending_count v);
  Validator.flush v;
  check_int "flushed" 0 (Validator.pending_count v);
  check_int "decided as timeout" 1 (Validator.fault_count v)

let test_adaptive_timeout_shrinks () =
  let engine = Engine.create () in
  let cfg =
    Jury.Jury_config.validator
      ~ack_peers_of:(fun _ -> [])
      (Jury.Jury_config.make ~adaptive_timeout:true ~k:0
         ~timeout:(Time.ms 500) ())
  in
  let v = Validator.create engine cfg in
  check_bool "starts at max" true
    (Time.equal (Validator.current_timeout_value v) (Time.ms 500));
  (* Feed 30 fast, complete triggers: theta must shrink well below the
     500 ms ceiling. *)
  for i = 1 to 30 do
    let taint = Types.Taint.external_trigger ~primary:0 ~serial:(100 + i) in
    Validator.register_external v ~taint ~at:(Engine.now engine) ~primary:0
      ~secondaries:[];
    ignore
      (Engine.schedule engine ~after:(Time.ms 5) (fun () ->
           Validator.deliver v
             { Response.controller = 0;
               taint;
               snapshot = Snapshot.pristine;
               sent_at = Engine.now engine;
               term = 0;
               body = Response.Execution { role = `Primary; actions = [] } }));
    Engine.run engine
  done;
  let theta = Validator.current_timeout_value v in
  check_bool "theta shrank" true Time.(theta < Time.ms 100);
  check_bool "theta above floor" true Time.(theta >= Time.ms 10)

(* --- Lossy-channel hardening (DESIGN.md) --- *)

let test_degraded_instead_of_timeout () =
  (* The primary's execution response is lost in transit, both
     secondaries' equivalent views arrive and agree. Seed behaviour
     raises a response-timeout alarm against the primary; with a
     degraded quorum of 2 the trigger decides Ok_degraded instead. *)
  let feed v =
    let actions = response_actions (Dpid.of_int 1) in
    let snap = Snapshot.pristine in
    Validator.register_external v ~taint ~at:Time.zero ~primary:0
      ~secondaries:[ 1; 2 ];
    deliver v ~controller:1 ~snapshot:snap
      (Response.Execution { role = `Secondary; actions });
    deliver v ~controller:2 ~snapshot:snap
      (Response.Execution { role = `Secondary; actions })
  in
  let engine, v = mk_validator () in
  feed v;
  Engine.run engine;
  check_bool "seed behaviour: timeout alarm" true
    (match Validator.alarms v with
    | [ a ] -> (
        match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Response_timeout fs
        | _ -> false)
    | _ -> false);
  let engine, v = mk_validator ~degraded_quorum:2 () in
  feed v;
  Engine.run engine;
  check_int "no faults" 0 (Validator.fault_count v);
  check_int "decided degraded" 1 (Validator.degraded_count v);
  (match Validator.verdicts v with
  | [ a ] ->
      check_bool "ok-degraded verdict" true
        (a.Alarm.verdict = Alarm.Ok_degraded)
  | _ -> Alcotest.fail "one verdict");
  (* Straggling-secondary variant: primary + one secondary agree, the
     other secondary never answers — decided degraded, straggler
     accounted. *)
  let engine, v = mk_validator ~degraded_quorum:2 () in
  let dpid = Dpid.of_int 1 in
  let actions = response_actions dpid in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  feed_cache_and_network v ~actions ~dpid;
  Engine.run engine;
  check_int "no faults (straggler)" 0 (Validator.fault_count v);
  check_int "decided degraded (straggler)" 1 (Validator.degraded_count v);
  check_int "straggler accounted" 1 (Validator.straggler_count v)

let test_duplicate_response_not_double_counted () =
  (* The primary's response is lost and secondary 1's agreeing response
     arrives twice. The stale duplicate must not fake a 3-view quorum. *)
  let engine, v = mk_validator ~degraded_quorum:3 () in
  let actions = response_actions (Dpid.of_int 1) in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2; 3 ];
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  deliver v ~controller:2 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  Engine.run engine;
  check_int "stale duplicate discarded" 1 (Validator.duplicate_count v);
  check_int "not decided degraded" 0 (Validator.degraded_count v);
  check_bool "quorum not met by duplicate" true
    (match Validator.alarms v with
    | [ a ] -> (
        match a.Alarm.verdict with
        | Alarm.Faulty fs -> List.mem Alarm.Response_timeout fs
        | _ -> false)
    | _ -> false)

let test_retransmit_backoff_and_cap () =
  let rt =
    Jury.Jury_config.retransmit ~fraction:0.2 ~backoff:2.0 ~max_retries:2 ()
  in
  let engine, v = mk_validator ~retransmit:rt () in
  let calls = ref [] in
  Validator.set_retransmit_handler v (fun _taint ~secondary ->
      calls := (Time.to_float_ms (Engine.now engine), secondary) :: !calls);
  let actions = response_actions (Dpid.of_int 1) in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v ~controller:0 ~snapshot:snap
    (Response.Execution { role = `Primary; actions });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  Engine.run engine;
  (* Only the straggler (2) is retried: at 0.2·θ = 20 ms, then the
     backoff doubles the gap (60 ms), then the retry cap stops it. *)
  Alcotest.(check (list (pair (float 1e-6) int)))
    "backoff schedule" [ (20., 2); (60., 2) ] (List.rev !calls);
  check_int "retransmit count" 2 (Validator.retransmit_count v)

let test_channel_counters_reconcile () =
  let module Channel = Jury.Channel in
  let engine = Engine.create ~seed:77 () in
  let rng = Rng.split (Engine.rng engine) in
  let ch =
    Channel.create engine ~rng ~name:"test"
      (Channel.lossy ~drop:0.3 ~duplicate:0.2 ~jitter_us:50. ())
  in
  let callbacks = ref 0 in
  let d = ref 0 and dr = ref 0 and dup = ref 0 in
  for _ = 1 to 400 do
    match Channel.send ch ~delay:(Time.ms 1) (fun () -> incr callbacks) with
    | `Delivered -> incr d
    | `Dropped -> incr dr
    | `Duplicated -> incr dup
  done;
  Channel.note_retransmit ch;
  Engine.run engine;
  let s = Channel.stats ch in
  check_int "sent all" 400 s.Channel.sent;
  check_int "sent = delivered + dropped" s.Channel.sent
    (s.Channel.delivered + s.Channel.dropped);
  check_int "delivered matches outcomes" (!d + !dup) s.Channel.delivered;
  check_int "dropped matches outcomes" !dr s.Channel.dropped;
  check_int "duplicated matches outcomes" !dup s.Channel.duplicated;
  check_int "one callback per delivered copy"
    (s.Channel.delivered + s.Channel.duplicated)
    !callbacks;
  check_int "retransmit noted" 1 s.Channel.retransmitted;
  check_bool "loss exercised" true (s.Channel.dropped > 0);
  check_bool "duplication exercised" true (s.Channel.duplicated > 0)

let test_report () =
  let engine, v = mk_validator () in
  feed_happy_path engine v;
  let r = Jury.Report.of_validator v in
  check_bool "healthy" true (Jury.Report.healthy r);
  check_int "decided" 1 r.Jury.Report.decided;
  check_bool "no suspect" true (Jury.Report.most_suspect r = None);
  (* A faulty verdict shows up attributed. *)
  let engine2, v2 = mk_validator () in
  Validator.register_external v2 ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  deliver v2 ~controller:1 ~snapshot:Snapshot.pristine
    (Response.Execution { role = `Secondary; actions = [] });
  Engine.run engine2;
  let r2 = Jury.Report.of_validator v2 in
  check_bool "unhealthy" false (Jury.Report.healthy r2);
  Alcotest.(check (option int)) "primary most suspect" (Some 0)
    (Jury.Report.most_suspect r2);
  (match r2.Jury.Report.suspects with
  | [ row ] ->
      check_int "one alarm" 1 row.Jury.Report.alarm_count;
      check_bool "kind recorded" true
        (List.mem_assoc "response-timeout" row.Jury.Report.fault_kinds)
  | _ -> Alcotest.fail "one suspect row");
  check_bool "renders" true (String.length (Jury.Report.to_string r2) > 0)

let test_audit_log () =
  let engine, v = mk_validator () in
  let audit = Jury.Audit.create ~capacity:100 () in
  Jury.Audit.attach audit v;
  feed_happy_path engine v;
  check_bool "evidence + verdict recorded" true (Jury.Audit.length audit >= 8);
  check_bool "chain verifies" true (Jury.Audit.verify_chain audit);
  let tau_entries = Jury.Audit.for_taint audit taint in
  check_bool "all entries concern tau" true
    (List.length tau_entries = Jury.Audit.length audit);
  check_bool "controller 1 reported" true
    (Jury.Audit.by_controller audit 1 <> []);
  (* verdict present *)
  check_bool "verdict entry exists" true
    (List.exists
       (fun (e : Jury.Audit.entry) ->
         match e.Jury.Audit.kind with
         | Jury.Audit.Verdict _ -> true
         | _ -> false)
       (Jury.Audit.entries audit));
  (* capacity bound *)
  let tiny = Jury.Audit.create ~capacity:3 () in
  for i = 1 to 10 do
    Jury.Audit.record_verdict tiny
      { Alarm.taint = Types.Taint.internal_trigger ~origin:0 ~seq:i;
        trigger_at = Time.zero;
        decided_at = Time.ms i;
        primary = Some 0;
        suspects = [];
        term = 0;
        verdict = Alarm.Ok_valid;
        detail = "" }
  done;
  check_int "bounded" 3 (Jury.Audit.length tiny);
  check_int "evicted" 7 (Jury.Audit.evicted tiny);
  check_bool "suffix chain still verifies" true (Jury.Audit.verify_chain tiny)

(* --- Deployment on a live cluster --- *)

let test_deployment_benign_and_faulty () =
  let engine = Engine.create ~seed:21 () in
  let plan = Jury_topo.Builder.linear ~switches:6 ~hosts_per_switch:1 in
  let network = Jury_net.Network.create engine plan () in
  let cluster =
    Jury_controller.Cluster.create engine
      ~profile:Jury_controller.Profile.onos ~nodes:5 ~network ()
  in
  let dep = Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ()) in
  let v = Jury.Deployment.validator dep in
  Jury_controller.Cluster.converge cluster;
  List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));
  let h0 = Jury_net.Network.host network 0 in
  let h5 = Jury_net.Network.host network 5 in
  Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h5)
    ~dst_ip:(Jury_net.Host.ip h5) ~src_port:1000 ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));
  let benign_verdicts = Validator.decided_count v in
  let benign_faults = Validator.fault_count v in
  check_bool "many triggers validated" true (benign_verdicts > 20);
  check_bool "benign mostly clean" true
    (float_of_int benign_faults /. float_of_int benign_verdicts < 0.05);
  check_bool "accounting: replication bytes" true
    (Jury.Deployment.replication_bytes dep > 0);
  check_bool "accounting: validator bytes" true
    (Jury.Deployment.validator_bytes dep > 0);
  (* Now corrupt a replica and watch JURY attribute the fault: replica
     1 blackholes the FLOW_MODs it sends while caching correct rules. *)
  let faulty = 1 in
  Jury_controller.Controller.set_mutator
    (Jury_controller.Cluster.controller cluster faulty)
    (Some Jury_faults.Injector.blackhole_flow_mods);
  let before = Validator.fault_count v in
  let dpid = Dpid.of_int 2 in
  Jury_controller.Cluster.rest cluster ~node:faulty
    (Types.Install_flow
       { dpid;
         flow =
           Of_message.flow_mod ~priority:300
             (Of_match.l2_dst ~dst:(Mac.of_host_index 42))
             [ Of_action.Output 1 ] });
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  check_bool "fault detected" true (Validator.fault_count v > before);
  check_bool "faulty node suspected" true
    (List.exists
       (fun (a : Alarm.t) -> List.mem faulty a.Alarm.suspects)
       (Validator.alarms v))

(* --- Standalone (Ryu-style) validation and failover re-attribution --- *)

let test_standalone_conservation () =
  (* A fault-free run on the standalone profile: every replicated
     trigger still gets exactly one verdict (state-blind voting changes
     what the consensus compares, never how many triggers decide). *)
  let engine = Engine.create ~seed:21 () in
  let plan = Jury_topo.Builder.linear ~switches:6 ~hosts_per_switch:1 in
  let network = Jury_net.Network.create engine plan () in
  let cluster =
    Jury_controller.Cluster.create engine
      ~profile:Jury_controller.Profile.ryu ~nodes:5 ~network ()
  in
  let dep = Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ()) in
  let v = Jury.Deployment.validator dep in
  Jury_controller.Cluster.converge cluster;
  List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));
  let h0 = Jury_net.Network.host network 0 in
  let h5 = Jury_net.Network.host network 5 in
  Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h5)
    ~dst_ip:(Jury_net.Host.ip h5) ~src_port:1000 ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));
  Validator.flush v;
  check_bool "triggers replicated" true
    (Jury.Deployment.replicated_trigger_count dep > 0);
  (* Internal (LLDP-probe) triggers are validated too, so decided can
     exceed the replicated external count — but never undershoot it,
     and nothing may be left undecided. *)
  check_bool "every replicated trigger decided" true
    (Validator.decided_count v
    >= Jury.Deployment.replicated_trigger_count dep);
  check_int "nothing pending" 0 (Validator.pending_count v);
  (* The leader masters every switch in standalone mode, so it is the
     primary on every southbound trigger. *)
  List.iter
    (fun (a : Alarm.t) ->
      match a.Alarm.primary with
      | Some p -> check_int "leader is primary" 0 p
      | None -> ())
    (Validator.alarms v)

let test_validator_reattribute () =
  (* Mid-flight leadership change: the trigger is re-judged against the
     new primary's responses (stamped with the new term) instead of
     timing out against the dead one. *)
  let engine, v = mk_validator () in
  let dpid = Dpid.of_int 1 in
  let actions = response_actions dpid in
  let snap = Snapshot.pristine in
  Validator.register_external v ~taint ~at:Time.zero ~primary:0
    ~secondaries:[ 1; 2 ];
  check_bool "unknown taint is refused" false
    (Validator.reattribute v
       ~taint:(Types.Taint.external_trigger ~primary:3 ~serial:99)
       ~primary:1 ~term:2);
  check_bool "reattributed" true
    (Validator.reattribute v ~taint ~primary:1 ~term:2);
  check_int "counted" 1 (Validator.reattributed_count v);
  (* Node 1 answered as secondary before the failover, then again as
     the new primary; both must count (dedup is per role). *)
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  deliver v ~controller:2 ~snapshot:snap
    (Response.Execution { role = `Secondary; actions });
  deliver v ~controller:1 ~snapshot:snap
    (Response.Execution { role = `Primary; actions });
  let cache_ev = cache_event_of_action ~origin:1 (List.hd actions) in
  deliver v ~controller:1 ~snapshot:snap (Response.Cache_update cache_ev);
  deliver v ~controller:2 ~snapshot:snap (Response.Cache_update cache_ev);
  deliver v ~controller:3 ~snapshot:snap (Response.Cache_update cache_ev);
  let _, fmv = flow_for dpid in
  deliver v ~controller:1 ~snapshot:snap
    (Response.Network_write { dpid; flow = fmv });
  Engine.run engine;
  check_int "decided" 1 (Validator.decided_count v);
  check_int "no faults" 0 (Validator.fault_count v);
  match Validator.verdicts v with
  | [ a ] ->
      check_bool "valid on the new primary" true
        (a.Alarm.verdict = Alarm.Ok_valid);
      (match a.Alarm.primary with
      | Some p -> check_int "new primary attributed" 1 p
      | None -> Alcotest.fail "no primary on alarm");
      check_int "term stamped" 2 a.Alarm.term
  | _ -> Alcotest.fail "one verdict"

(* Zero-churn byte-identity: with election never enabled, a clustered
   run's forensic report is byte-identical to the seed's. The digests
   below were recorded when the leadership machinery landed; any later
   change that silently perturbs churn-free ONOS/ODL runs shows up as
   a digest mismatch here (print the report and re-pin only if the
   change is intentional). *)
let zero_churn_report profile =
  let engine = Engine.create ~seed:21 () in
  let plan = Jury_topo.Builder.linear ~switches:6 ~hosts_per_switch:1 in
  let network = Jury_net.Network.create engine plan () in
  let cluster =
    Jury_controller.Cluster.create engine ~profile ~nodes:5 ~network ()
  in
  let dep = Jury.Jury_config.install cluster (Jury.Jury_config.make ~k:2 ()) in
  let v = Jury.Deployment.validator dep in
  Jury_controller.Cluster.converge cluster;
  List.iter Jury_net.Host.join (Jury_net.Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));
  let h0 = Jury_net.Network.host network 0 in
  let h5 = Jury_net.Network.host network 5 in
  Jury_net.Host.send_tcp h0 ~dst_mac:(Jury_net.Host.mac h5)
    ~dst_ip:(Jury_net.Host.ip h5) ~src_port:1000 ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 2));
  Validator.flush v;
  ignore (Jury.Deployment.channel_totals dep);
  Digest.to_hex (Digest.string (Jury.Report.to_string (Jury.Report.of_validator v)))

let test_zero_churn_byte_identity () =
  let check_digest name profile expected =
    let got = zero_churn_report profile in
    if got <> expected then
      Alcotest.failf "%s zero-churn report digest drifted: %s (pinned %s)"
        name got expected
  in
  check_digest "onos" Jury_controller.Profile.onos
    "06e1c88ee52ca46462758abf0d48bca8";
  check_digest "odl" Jury_controller.Profile.odl
    "4c9687a61612814d68a5b5f4a2a35589"

(* Fuzz: arbitrary response multisets never crash the validator, every
   registered trigger is eventually decided exactly once, and verdicts
   are deterministic in the input. *)
let prop_validator_total =
  QCheck.Test.make ~name:"validator decides everything exactly once"
    ~count:60
    QCheck.(list_of_size (Gen.int_range 0 25)
              (pair (int_bound 3) (int_bound 5)))
    (fun deliveries ->
      let engine = Engine.create () in
      let cfg =
        Jury.Jury_config.validator
          ~ack_peers_of:(fun o -> [ (o + 1) mod 4 ])
          (Jury.Jury_config.make ~k:2 ~timeout:(Time.ms 50) ())
      in
      let v = Validator.create engine cfg in
      let taints =
        Array.init 6 (fun i ->
            Types.Taint.external_trigger ~primary:(i mod 4) ~serial:i)
      in
      Array.iteri
        (fun i taint ->
          Validator.register_external v ~taint ~at:Time.zero
            ~primary:(i mod 4) ~secondaries:[ (i + 1) mod 4 ])
        taints;
      List.iter
        (fun (ctrl, tn) ->
          let taint = taints.(tn) in
          let body =
            if ctrl mod 2 = 0 then
              Response.Execution
                { role = (if ctrl = tn mod 4 then `Primary else `Secondary);
                  actions = response_actions (Dpid.of_int (1 + ctrl)) }
            else
              Response.Cache_update
                { Event.cache = Names.flowsdb; op = Event.Create;
                  key = Printf.sprintf "k%d" ctrl; value = "v";
                  origin = ctrl; seq = tn;
                  taint = Some (Types.Taint.to_string taint) }
          in
          Validator.deliver v
            { Response.controller = ctrl; taint;
              snapshot = Snapshot.pristine; sent_at = Time.zero; term = 0; body })
        deliveries;
      Engine.run engine;
      Validator.decided_count v = Array.length taints
      && Validator.pending_count v = 0)

let suite =
  [ ("snapshot order-insensitive", `Quick, test_snapshot_order_insensitive);
    ("snapshot content-sensitive", `Quick, test_snapshot_content_sensitive);
    ("encapsulation roundtrip", `Quick, test_encap_roundtrip);
    ("validator happy path", `Quick, test_validator_happy_path);
    ("validator consensus mismatch", `Quick, test_validator_consensus_mismatch);
    ("validator dissenting secondary", `Quick, test_validator_dissenting_secondary);
    ("validator state-aware excuse", `Quick, test_validator_state_aware_excuses);
    ("validator naive majority FP", `Quick, test_validator_naive_majority_false_alarm);
    ("validator non-determinism rule", `Quick, test_validator_nondet_rule);
    ("validator timeout missing primary", `Quick, test_validator_timeout_missing_primary);
    ("validator cache-without-network", `Quick, test_validator_cache_without_network);
    ("validator network-without-cache", `Quick, test_validator_network_without_cache);
    ("validator cache/network mismatch", `Quick, test_validator_cache_network_mismatch);
    ("validator write failure", `Quick, test_validator_write_failure);
    ("validator policy check", `Quick, test_validator_policy_check);
    ("validator internal trigger", `Quick, test_validator_internal_trigger);
    ("validator flush", `Quick, test_validator_flush);
    ("adaptive timeout shrinks", `Quick, test_adaptive_timeout_shrinks);
    ("degraded quorum instead of timeout", `Quick,
     test_degraded_instead_of_timeout);
    ("duplicate response not double-counted", `Quick,
     test_duplicate_response_not_double_counted);
    ("retransmit backoff and cap", `Quick, test_retransmit_backoff_and_cap);
    ("channel counters reconcile", `Quick, test_channel_counters_reconcile);
    ("standalone verdict conservation", `Quick, test_standalone_conservation);
    ("validator failover re-attribution", `Quick, test_validator_reattribute);
    ("zero-churn byte identity (onos/odl)", `Quick,
     test_zero_churn_byte_identity);
    ("alarm report", `Quick, test_report);
    ("audit log", `Quick, test_audit_log);
    ("deployment benign + faulty", `Slow, test_deployment_benign_and_faulty);
    QCheck_alcotest.to_alcotest prop_validator_total ]
