(* Tests for the schedule explorer: the engine's tie-break hook, choice
   traces, footprint algebra, the DFS + pruning arithmetic on synthetic
   engines, and end-to-end exploration of the demo deployment. *)

open Jury_sim
module Explorer = Jury_mc.Explorer
module Trace = Jury_mc.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- tie-breaker regression ----------------------------------------

   N equal-time events run in insertion order by default, and in the
   exact reverse order with the reversing tie-breaker — pinning that
   the heap's tie hook really is the only source of ordering freedom. *)

let order_with ?tie () =
  let engine = Engine.create ?tie () in
  let order = ref [] in
  for i = 1 to 8 do
    ignore
      (Engine.schedule engine ~after:(Time.ms 1) (fun () ->
           order := i :: !order))
  done;
  Engine.run engine;
  List.rev !order

let test_engine_fifo_ties () =
  Alcotest.(check (list int))
    "default: insertion order" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (order_with ())

let test_engine_lifo_ties () =
  Alcotest.(check (list int))
    "lifo: exact reverse" [ 8; 7; 6; 5; 4; 3; 2; 1 ]
    (order_with ~tie:Heap.lifo ())

(* A chooser sees every live tied candidate and its declared footprint,
   and its index choice dictates execution order. *)
let test_chooser_sees_candidates () =
  let engine = Engine.create () in
  let order = ref [] in
  for i = 0 to 2 do
    ignore
      (Engine.schedule engine
         ~footprint:(Footprint.touches [ Footprint.switch i ])
         ~after:(Time.ms 1)
         (fun () -> order := i :: !order))
  done;
  let seen = ref [] in
  Engine.set_chooser engine
    (Some
       (fun cands ->
         seen := Array.length cands :: !seen;
         Array.length cands - 1));
  Engine.run engine;
  Alcotest.(check (list int)) "always picks last" [ 2; 1; 0 ] (List.rev !order);
  (* 3 tied, then 2, then a lone event (no consultation) *)
  Alcotest.(check (list int)) "candidate counts" [ 3; 2 ] (List.rev !seen)

(* --- traces -------------------------------------------------------- *)

let test_trace_roundtrip () =
  let t = Trace.of_list [ 0; 2; 1 ] in
  check_string "print" "0.2.1" (Trace.to_string t);
  (match Trace.of_string "0.2.1" with
  | Ok t' -> check_bool "parse inverse" true (Trace.equal t t')
  | Error e -> Alcotest.fail e);
  check_string "empty prints -" "-" (Trace.to_string Trace.empty);
  (match Trace.of_string "-" with
  | Ok t' -> check_bool "dash is empty" true (Trace.is_empty t')
  | Error e -> Alcotest.fail e);
  (match Trace.of_string "" with
  | Ok t' -> check_bool "blank is empty" true (Trace.is_empty t')
  | Error e -> Alcotest.fail e);
  (match Trace.of_string "1.x.2" with
  | Ok _ -> Alcotest.fail "junk accepted"
  | Error e ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check_bool "error names input" true (contains e "1.x.2"));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Trace.of_list: negative choice") (fun () ->
      ignore (Trace.of_list [ 1; -1 ]))

(* --- footprints ---------------------------------------------------- *)

let test_footprint_algebra () =
  let a = Footprint.touches [ Footprint.switch 1 ]
  and b = Footprint.touches [ Footprint.switch 2 ]
  and c = Footprint.touches [ Footprint.switch 1; Footprint.controller 0 ] in
  check_bool "disjoint commute" true (Footprint.independent a b);
  check_bool "shared resource conflicts" false (Footprint.independent a c);
  check_bool "opaque conflicts with declared" false
    (Footprint.independent Footprint.opaque a);
  check_bool "opaque conflicts with opaque" false
    (Footprint.independent Footprint.opaque Footprint.opaque);
  check_bool "empty commutes" true (Footprint.independent (Footprint.touches []) a);
  check_bool "union keeps both" false
    (Footprint.independent (Footprint.union a b) b);
  check_bool "union with opaque absorbs" true
    (Footprint.is_opaque (Footprint.union a Footprint.opaque));
  (* namespaces never collide *)
  check_bool "switch vs controller" true
    (Footprint.independent
       (Footprint.touches [ Footprint.switch 1 ])
       (Footprint.touches [ Footprint.controller 1 ]));
  (* the shared per-trigger convention: same taint string, same resource *)
  check_bool "same taint conflicts" false
    (Footprint.independent
       (Footprint.touches [ Footprint.taint "t:0" ])
       (Footprint.touches [ Footprint.taint "t:0" ]));
  check_bool "distinct taints commute" true
    (Footprint.independent
       (Footprint.touches [ Footprint.taint "t:0" ])
       (Footprint.touches [ Footprint.taint "t:1" ]))

(* --- schedule-count arithmetic ------------------------------------

   Drive the DFS core over a synthetic engine holding one timestamp
   tie, and pin the explored/pruned counts: a commuting pair collapses
   to one schedule, a dependent pair needs both orders, a dependent
   triple needs all 3! = 6, and pruning is exact for a mixed triple. *)

let tied_run footprints record trace =
  let engine = Engine.create () in
  let order = ref [] in
  List.iteri
    (fun i fp ->
      ignore
        (Engine.schedule engine ~footprint:fp ~after:(Time.ms 1) (fun () ->
             order := i :: !order)))
    footprints;
  Engine.set_chooser engine (Some (Explorer.chooser ~record trace));
  Engine.run engine;
  List.rev !order

let explore_tied ?(prune = true) footprints =
  Explorer.explore_with ~prune ~max_schedules:100
    ~run:(tied_run footprints)
    ~check:(fun _ _ _ -> None)
    ()

let sw i = Footprint.touches [ Footprint.switch i ]

let test_commuting_pair_one_schedule () =
  let _, stats, _ = explore_tied [ sw 1; sw 2 ] in
  check_int "explored" 1 stats.Explorer.explored;
  check_int "pruned" 1 stats.Explorer.pruned;
  check_int "branched" 0 stats.Explorer.branched;
  check_bool "complete" false stats.Explorer.truncated

let test_dependent_pair_two_schedules () =
  let _, stats, _ = explore_tied [ sw 1; sw 1 ] in
  check_int "explored" 2 stats.Explorer.explored;
  check_int "pruned" 0 stats.Explorer.pruned;
  check_int "branched" 1 stats.Explorer.branched

let test_opaque_pair_two_schedules () =
  let _, stats, _ = explore_tied [ Footprint.opaque; Footprint.opaque ] in
  check_int "undeclared events explored exhaustively" 2
    stats.Explorer.explored

let test_dependent_triple_factorial () =
  let _, stats, _ = explore_tied [ sw 1; sw 1; sw 1 ] in
  check_int "3! schedules" 6 stats.Explorer.explored;
  check_int "pruned" 0 stats.Explorer.pruned

let test_independent_triple_one_schedule () =
  let _, stats, _ = explore_tied [ sw 1; sw 2; sw 3 ] in
  check_int "explored" 1 stats.Explorer.explored;
  (* two alternatives pruned at the three-way tie, one more at the
     two-way tie left after the first event runs *)
  check_int "pruned" 3 stats.Explorer.pruned

let test_naive_pair_counts () =
  let _, stats, _ = explore_tied ~prune:false [ sw 1; sw 2 ] in
  check_int "naive explores both orders" 2 stats.Explorer.explored;
  check_int "nothing pruned" 0 stats.Explorer.pruned

(* The checker sees genuinely different execution orders on the
   branches the explorer takes. *)
let test_divergence_detected () =
  let _, _, divs =
    Explorer.explore_with ~max_schedules:100
      ~run:(tied_run [ sw 1; sw 1 ])
      ~check:(fun reference trace outcome ->
        if outcome = reference then None
        else
          Some
            { Explorer.div_trace = trace;
              div_diff = Some "orders differ";
              div_failures = [] })
      ()
  in
  check_int "the swapped order diverges" 1 (List.length divs);
  match divs with
  | [ d ] -> check_string "at trace 1" "1" (Trace.to_string d.Explorer.div_trace)
  | _ -> Alcotest.fail "expected exactly one divergence"

(* --- end-to-end on the demo deployment ---------------------------- *)

let demo = Explorer.demo_case ~switches:1 ~triggers:1 ~nodes:2 ()

(* Replaying the same trace twice is bit-identical (the determinism
   every cross-schedule comparison rests on). *)
let test_replay_deterministic () =
  let exec = Explorer.executor (Trace.of_list [ 1 ]) in
  let a = exec demo and b = exec demo in
  check_bool "same trace, same fingerprint" true
    (Jury_check.Run.fingerprint_equal a.Jury_check.Run.fp
       b.Jury_check.Run.fp);
  (* and a different schedule really is a different execution: serials
     or timings may shift even though the schedule-blind residue must
     not *)
  let fifo = Explorer.executor Trace.empty demo in
  check_bool "projection agrees across schedules" true
    (Jury_check.Run.diff_schedule_blind fifo.Jury_check.Run.fp
       a.Jury_check.Run.fp
    = None)

let test_demo_exploration_clean () =
  let r =
    Explorer.explore ~max_schedules:3000
      ~oracles:(Jury_check.Registry.by_family "conservation") demo
  in
  let s = r.Explorer.rep_stats in
  check_bool "fully enumerated" false s.Explorer.truncated;
  check_bool "more than one schedule" true (s.Explorer.explored > 1);
  check_bool "pruning fired" true (s.Explorer.pruned > 0);
  check_int "no divergences" 0 (List.length r.Explorer.rep_divergences);
  check_bool "reference decided triggers" true
    (r.Explorer.rep_reference.Jury_check.Run.fp.decided > 0);
  (* the acceptance ratio: naive enumeration of the same case needs at
     least twice the schedules pruning needs (it caps out while the
     pruned run completes) *)
  let naive =
    Explorer.explore ~prune:false
      ~max_schedules:(2 * s.Explorer.explored)
      ~oracles:[] demo
  in
  check_bool "naive needs >= 2x schedules" true
    naive.Explorer.rep_stats.Explorer.truncated

let suite =
  [ ("engine fifo ties", `Quick, test_engine_fifo_ties);
    ("engine lifo ties", `Quick, test_engine_lifo_ties);
    ("chooser sees candidates", `Quick, test_chooser_sees_candidates);
    ("trace roundtrip", `Quick, test_trace_roundtrip);
    ("footprint algebra", `Quick, test_footprint_algebra);
    ("commuting pair -> 1 schedule", `Quick, test_commuting_pair_one_schedule);
    ("dependent pair -> 2 schedules", `Quick,
     test_dependent_pair_two_schedules);
    ("opaque pair -> 2 schedules", `Quick, test_opaque_pair_two_schedules);
    ("dependent triple -> 6 schedules", `Quick,
     test_dependent_triple_factorial);
    ("independent triple -> 1 schedule", `Quick,
     test_independent_triple_one_schedule);
    ("naive pair -> 2 schedules", `Quick, test_naive_pair_counts);
    ("divergence detected", `Quick, test_divergence_detected);
    ("replay determinism", `Quick, test_replay_deterministic);
    ("demo exploration", `Slow, test_demo_exploration_clean) ]
