(* The fuzzing loop's contract: everything is a pure function of
   (seed, budget). Corpus ids, lineages and feature maps must be
   reproducible run over run; every corpus entry must replay
   bit-identically from its lineage alone; and guided mutation must
   strictly beat an equal budget of blind cases on coverage, because
   the mutators own the stateful fault vocabulary. Finally, blind mode
   itself is pinned by digest so `check` fingerprints can never drift
   under fuzzing changes. *)

module Case = Jury_check.Case
module Coverage = Jury_check.Coverage
module Corpus = Jury_check.Corpus
module Mutate = Jury_check.Mutate
module Fuzz = Jury_check.Fuzz
module Run = Jury_check.Run
module Rng = Jury_sim.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- determinism: same (seed, budget) twice -> same corpus -- *)

let test_deterministic () =
  let go () = Fuzz.run ~budget:16 ~seed:7 () in
  let a = go () and b = go () in
  check_int "same executed" a.Fuzz.executed b.Fuzz.executed;
  check_int "same blind baseline" a.Fuzz.blind_features b.Fuzz.blind_features;
  let ids s =
    List.map (fun (e : Corpus.entry) -> e.Corpus.id) (Corpus.entries s.Fuzz.corpus)
  in
  Alcotest.(check (list string)) "same corpus ids" (ids a) (ids b);
  let lineages s = List.map Corpus.lineage (Corpus.entries s.Fuzz.corpus) in
  Alcotest.(check (list string)) "same lineages" (lineages a) (lineages b);
  check_bool "same feature map" true
    (Coverage.equal (Corpus.features a.Fuzz.corpus) (Corpus.features b.Fuzz.corpus))

(* -- replay: every corpus entry rebuilds bit-identically from
   base_seed + mutation trace -- *)

let test_replay_bit_identical () =
  let s = Fuzz.run ~budget:16 ~seed:11 () in
  check_bool "corpus nonempty" true (Corpus.size s.Fuzz.corpus > 0);
  List.iter
    (fun (e : Corpus.entry) ->
      check_bool
        (Printf.sprintf "replay %s" (Corpus.lineage e))
        true
        (Case.equal (Corpus.replay e) e.Corpus.case);
      (* and via the printed lineage string alone *)
      match Corpus.lineage_of_string (Corpus.lineage e) with
      | Error msg -> Alcotest.failf "lineage parse: %s" msg
      | Ok (base_seed, trace) ->
          check_bool
            (Printf.sprintf "lineage replay %s" (Corpus.lineage e))
            true
            (Case.equal (Corpus.replay_trace ~base_seed ~trace) e.Corpus.case))
    (Corpus.entries s.Fuzz.corpus)

(* -- coverage: guided strictly beats an equal blind budget -- *)

let test_guided_beats_blind () =
  let budget = 40 and seed = 7 in
  let s = Fuzz.run ~budget ~seed () in
  let guided = Corpus.feature_count s.Fuzz.corpus in
  let blind = Fuzz.blind_feature_count ~cases:budget ~seed () in
  check_int "same budget spent" budget s.Fuzz.executed;
  if guided <= blind then
    Alcotest.failf "guided %d feature(s) <= blind %d at budget %d" guided
      blind budget;
  (* and the guided surplus includes vocabulary blind can never draw *)
  let stateful =
    List.exists
      (fun f ->
        List.mem f
          [ "fault:rejoin"; "fault:byzantine"; "fault:partition";
            "fault:add-rule" ])
      (Coverage.features (Corpus.features s.Fuzz.corpus))
  in
  check_bool "stateful vocabulary reached" true stateful

(* -- mutators: validity floors survive arbitrary moves -- *)

let test_mutators_preserve_validity () =
  let rng = Rng.create 1234 in
  for i = 0 to 199 do
    let case = Case.generate ~seed:(500 + i) in
    List.iter
      (fun (m : Mutate.t) ->
        match Mutate.apply m ~step_seed:(Rng.int rng 1_000_000_000) case with
        | None -> ()
        | Some c ->
            check_bool
              (Printf.sprintf "%s keeps hosts floor (seed %d)" m.Mutate.name
                 (500 + i))
              true (Case.Lens.hosts_floor c);
            check_bool
              (Printf.sprintf "%s keeps k < nodes (seed %d)" m.Mutate.name
                 (500 + i))
              true
              (c.Case.k < c.Case.nodes && c.Case.k >= 1);
            check_bool
              (Printf.sprintf "%s changed the case (seed %d)" m.Mutate.name
                 (500 + i))
              true
              (not (Case.equal c case)))
      Mutate.all
  done

(* -- lineage: printable provenance round-trips -- *)

let test_lineage_roundtrip () =
  let trace =
    [ ("fault-inject", 280440992); ("workload-flip", 91026226);
      ("burst-rate", 3) ]
  in
  let lineage = Corpus.lineage_of ~base_seed:24 ~trace in
  check_string "lineage shape"
    "seed=24 fault-inject@280440992 workload-flip@91026226 burst-rate@3"
    lineage;
  (match Corpus.lineage_of_string lineage with
  | Error msg -> Alcotest.failf "round-trip: %s" msg
  | Ok (seed, trace') ->
      check_int "seed back" 24 seed;
      check_bool "trace back" true (trace = trace'));
  (match Corpus.lineage_of_string "seed=7" with
  | Ok (7, []) -> ()
  | Ok _ -> Alcotest.fail "bare seed parsed wrong"
  | Error msg -> Alcotest.failf "bare seed: %s" msg);
  match Corpus.lineage_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage lineage accepted"

(* -- blind identity: `check` without --fuzz is byte-identical to the
   pre-fuzzing tree. Case shape and run fingerprint digests were
   captured at the parent commit; any drift here means the fuzzing PR
   changed blind semantics, which it must not. -- *)

let blind_pins =
  [ (42, "e8c8c64d84519e46ba15f267347173ed", "41ffbf10fcdfce9763b835df82d1f697");
    (43, "57077026fec594b7e9c236a6fa996a26", "6fe6ac729a4a6ab9e043e374e4c7d285");
    (44, "cfed2f5de145e14d014b8e5c231c3368", "58be4de96de212cdf08b1c9ffa1a43b0");
    (45, "a98f7ea0492274aaa70e589a48f014bb", "9ea0f525fa1c77bae08b07b034fed884");
    (46, "0742b69cf2e409a7aa229ad84cb10527", "cc6c97619030987d3c549548830fc175");
    (1042, "5d78e2685387f8c0e062f4336bd26fc8", "c0ccec84d08f1e8f0f91fd75fb2cec07");
    (7, "60c29b30b768dc3b1809c7de78a1c522", "7feed672df6ed7f1a23251717d2644ac");
    (99, "603a40f1ac9518127977bf9bc2bf0ba0", "15a87d54693e9122d606282ed5c76661") ]

let test_blind_fingerprints_pinned () =
  List.iter
    (fun (seed, case_digest, run_digest) ->
      let case = Case.generate ~seed in
      check_string
        (Printf.sprintf "case digest (seed %d)" seed)
        case_digest
        (Digest.to_hex (Digest.string (Case.to_ocaml ~indent:"" case)));
      let o = Run.execute case in
      let fp = o.Run.fp in
      check_string
        (Printf.sprintf "run digest (seed %d)" seed)
        run_digest
        (Digest.to_hex
           (Digest.string
              (String.concat "\n"
                 (Printf.sprintf
                    "decided=%d faults=%d overload=%d degraded=%d"
                    fp.Run.decided fp.Run.faults fp.Run.overload
                    fp.Run.degraded
                 :: fp.Run.verdict_lines)))))
    blind_pins

let suite =
  [ Alcotest.test_case "fuzz determinism" `Slow test_deterministic;
    Alcotest.test_case "corpus replay bit-identity" `Slow
      test_replay_bit_identical;
    Alcotest.test_case "guided beats blind coverage" `Slow
      test_guided_beats_blind;
    Alcotest.test_case "mutators preserve validity" `Quick
      test_mutators_preserve_validity;
    Alcotest.test_case "lineage round-trip" `Quick test_lineage_roundtrip;
    Alcotest.test_case "blind fingerprints pinned" `Slow
      test_blind_fingerprints_pinned ]
