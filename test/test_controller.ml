(* Tests for the clustered controller: value codecs, taints, pipeline,
   planning logic, cluster bootstrap and end-to-end forwarding. *)

open Jury_sim
open Jury_controller
module Of_match = Jury_openflow.Of_match
module Of_message = Jury_openflow.Of_message
module Of_action = Jury_openflow.Of_action
module Dpid = Jury_openflow.Of_types.Dpid
module Network = Jury_net.Network
module Switch = Jury_net.Switch
module Host = Jury_net.Host
module Builder = Jury_topo.Builder
module Fabric = Jury_store.Fabric
module Names = Jury_store.Cache_names
module Mac = Jury_packet.Addr.Mac
module Ipv4 = Jury_packet.Addr.Ipv4

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Values --- *)

let test_values_host () =
  let v = Values.Host.value ~dpid:(Dpid.of_int 3) ~port:2 ~ip:(Ipv4.of_host_index 5) in
  match Values.Host.parse v with
  | Some (dpid, port, ip) ->
      check_bool "dpid" true (Dpid.equal dpid (Dpid.of_int 3));
      check_int "port" 2 port;
      check_bool "ip" true (Ipv4.equal ip (Ipv4.of_host_index 5))
  | None -> Alcotest.fail "host value must parse"

let test_values_link () =
  let e1 = (Dpid.of_int 1, 2) and e2 = (Dpid.of_int 2, 3) in
  let k1 = Values.Link.key e1 e2 and k2 = Values.Link.key e2 e1 in
  Alcotest.(check string) "order insensitive" k1 k2;
  (match Values.Link.parse_key k1 with
  | Some (a, b) ->
      check_bool "endpoints preserved" true
        ((a = e1 && b = e2) || (a = e2 && b = e1))
  | None -> Alcotest.fail "link key must parse");
  check_bool "involves" true (Values.Link.involves k1 (Dpid.of_int 1) 2);
  check_bool "not involves other port" false
    (Values.Link.involves k1 (Dpid.of_int 1) 9)

let test_values_flow () =
  let m = Of_match.l2_pair ~src:(Mac.of_host_index 1) ~dst:(Mac.of_host_index 2) in
  let fmv = Of_message.flow_mod ~priority:77 m [ Of_action.Output 4 ] in
  let v = Values.Flow.value fmv in
  (match Values.Flow.parse v with
  | Some fmv' ->
      check_bool "match" true (Of_match.equal fmv'.Of_message.fm_match m);
      check_int "priority" 77 fmv'.Of_message.priority
  | None -> Alcotest.fail "flow value must parse");
  let key = Values.Flow.key (Dpid.of_int 9) m ~priority:77 in
  (match Values.Flow.dpid_of_key key with
  | Some d -> check_bool "dpid from key" true (Dpid.equal d (Dpid.of_int 9))
  | None -> Alcotest.fail "key must carry dpid");
  check_bool "bad value rejected" true (Values.Flow.parse "zzz" = None)

let test_values_switch_master () =
  let v = Values.Switch.value_connected ~master:4 ~ports:[ 3; 1; 2 ] in
  (match Values.Switch.parse v with
  | Some (master, ports) ->
      check_int "master" 4 master;
      Alcotest.(check (list int)) "sorted ports" [ 1; 2; 3 ] ports
  | None -> Alcotest.fail "switch value must parse");
  Alcotest.(check (option int)) "master value" (Some 6)
    (Values.Master.parse (Values.Master.value 6))

(* --- Taints --- *)

let test_taint () =
  let ext = Types.Taint.external_trigger ~primary:3 ~serial:42 in
  check_bool "external" true (Types.Taint.is_external ext);
  Alcotest.(check (option int)) "primary" (Some 3) (Types.Taint.primary_of ext);
  let int_t = Types.Taint.internal_trigger ~origin:5 ~seq:7 in
  check_bool "internal" false (Types.Taint.is_external int_t);
  Alcotest.(check (option int)) "no primary" None (Types.Taint.primary_of int_t);
  (match Types.Taint.of_string (Types.Taint.to_string ext) with
  | Some t -> check_bool "roundtrip" true (Types.Taint.equal t ext)
  | None -> Alcotest.fail "taint roundtrip");
  check_bool "garbage rejected" true (Types.Taint.of_string "nope" = None)

let test_fingerprints () =
  let a =
    Types.Cache_write
      { cache = "HOSTDB"; op = Jury_store.Event.Create; key = "k"; value = "v" }
  in
  let b =
    Types.Network_send
      { dpid = Dpid.of_int 1; payload = Of_message.Hello }
  in
  check_bool "order insensitive" true
    (Types.fingerprint_response [ a; b ] = Types.fingerprint_response [ b; a ]);
  check_bool "content sensitive" false
    (Types.fingerprint_response [ a ] = Types.fingerprint_response [ b ])

(* --- Pipeline --- *)

let test_pipeline_serial_service () =
  let engine = Engine.create () in
  let p = Pipeline.create engine
      (Pipeline.config ~service_sigma:0.01 ~base_service:(Time.ms 1) ()) in
  let completions = ref [] in
  for i = 1 to 3 do
    Pipeline.submit p (fun () -> completions := (i, Engine.now engine) :: !completions)
  done;
  Engine.run engine;
  check_int "all completed" 3 (Pipeline.completed p);
  let times = List.rev_map snd !completions in
  let rec spaced = function
    | a :: (b :: _ as rest) ->
        Time.(Time.sub b a >= Time.of_float_us 900.) && spaced rest
    | _ -> true
  in
  check_bool "serialized" true (spaced times)

let test_pipeline_add_load_delays_next () =
  let engine = Engine.create () in
  let p = Pipeline.create engine
      (Pipeline.config ~service_sigma:0.01 ~base_service:(Time.ms 1) ()) in
  let t2 = ref Time.zero in
  Pipeline.submit p (fun () -> Pipeline.add_load p (Time.ms 10));
  Pipeline.submit p (fun () -> t2 := Engine.now engine);
  Engine.run engine;
  check_bool "second job pushed past stall" true Time.(!t2 >= Time.ms 11)

let test_pipeline_overload_drops () =
  let engine = Engine.create () in
  let p = Pipeline.create engine
      (Pipeline.config ~service_sigma:0.01 ~base_service:(Time.ms 10)
         ~overload_backlog:(Time.ms 100) ()) in
  for _ = 1 to 100 do
    Pipeline.submit p (fun () -> ())
  done;
  check_bool "dropped some" true (Pipeline.dropped p > 0);
  check_bool "overloaded" true (Pipeline.overloaded p)

(* --- Cluster bootstrap and behaviour --- *)

let mk_cluster ?(profile = Profile.onos) ?(nodes = 3) ?(switches = 4)
    ?(hosts_per_switch = 1) () =
  let engine = Engine.create ~seed:5 () in
  let plan = Builder.linear ~switches ~hosts_per_switch in
  let network = Network.create engine plan () in
  let cluster = Cluster.create engine ~profile ~nodes ~network () in
  Cluster.converge cluster;
  (engine, network, cluster)

let settle engine = Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1))

let test_bootstrap_discovery () =
  let _, _, cluster = mk_cluster () in
  let fabric = Cluster.fabric cluster in
  check_int "all switches registered" 4
    (Fabric.entry_count fabric ~node:0 ~cache:Names.switchdb);
  check_int "all links discovered" 3
    (Fabric.entry_count fabric ~node:1 ~cache:Names.linksdb);
  check_int "mastership published" 4
    (Fabric.entry_count fabric ~node:2 ~cache:Names.masterdb)

let test_mastership_round_robin () =
  let _, network, cluster = mk_cluster () in
  let masters =
    List.map
      (fun sw -> Cluster.master_of cluster (Switch.dpid sw))
      (Network.switches network)
  in
  check_bool "spread across nodes" true
    (List.length (List.sort_uniq compare masters) = 3)

let test_host_learning () =
  let engine, network, cluster = mk_cluster () in
  List.iter Host.join (Network.hosts network);
  settle engine;
  let fabric = Cluster.fabric cluster in
  check_int "hosts learned" 4
    (Fabric.entry_count fabric ~node:0 ~cache:Names.hostdb);
  check_int "arp learned" 4
    (Fabric.entry_count fabric ~node:1 ~cache:Names.arpdb);
  (* Host location correct. *)
  let h0 = Network.host network 0 in
  match
    Fabric.read fabric ~node:0 ~cache:Names.hostdb
      ~key:(Values.Host.key (Host.mac h0))
  with
  | Some v -> (
      match Values.Host.parse v with
      | Some (dpid, _, _) ->
          check_bool "attached to switch 1" true (Dpid.equal dpid (Dpid.of_int 1))
      | None -> Alcotest.fail "host value parse")
  | None -> Alcotest.fail "host 0 missing"

let test_end_to_end_forwarding () =
  let engine, network, cluster = mk_cluster () in
  List.iter Host.join (Network.hosts network);
  settle engine;
  let h0 = Network.host network 0 and h3 = Network.host network 3 in
  Host.send_tcp h0 ~dst_mac:(Host.mac h3) ~dst_ip:(Host.ip h3) ~src_port:1234
    ~dst_port:80 ();
  settle engine;
  check_bool "delivered across 4 switches" true (Host.received_count h3 > 0);
  (* Hop-by-hop reactive rules: every switch got exactly one rule. *)
  List.iter
    (fun sw ->
      check_int
        ("rule at switch " ^ Dpid.to_string (Switch.dpid sw))
        1
        (Jury_openflow.Flow_table.size (Switch.table sw)))
    (Network.switches network);
  check_int "flowsdb has all hops" 4
    (Fabric.entry_count (Cluster.fabric cluster) ~node:0 ~cache:Names.flowsdb)

let test_rest_install_local_and_remote () =
  let engine, network, cluster = mk_cluster () in
  settle engine;
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 9) in
  let flow = Of_message.flow_mod ~priority:500 m [ Of_action.Output 1 ] in
  (* Install on a switch NOT mastered by node 0: must delegate through
     the store to the actual master (transparent remote directive). *)
  let dpid = Dpid.of_int 2 in
  check_bool "switch 2 not mastered by 0" true
    (Cluster.master_of cluster dpid <> 0);
  Cluster.rest cluster ~node:0 (Types.Install_flow { dpid; flow });
  settle engine;
  let sw = Network.switch network dpid in
  check_bool "rule reached remote switch" true
    (Jury_openflow.Flow_table.find_exact (Switch.table sw) m ~priority:500
    <> None)

let test_rest_delete () =
  let engine, network, cluster = mk_cluster () in
  settle engine;
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 9) in
  let flow = Of_message.flow_mod ~priority:500 m [ Of_action.Output 1 ] in
  let dpid = Dpid.of_int 1 in
  Cluster.rest cluster ~node:0 (Types.Install_flow { dpid; flow });
  settle engine;
  Cluster.rest cluster ~node:0 (Types.Delete_flow { dpid; fm_match = m });
  settle engine;
  let sw = Network.switch network dpid in
  check_bool "rule gone from switch" true
    (Jury_openflow.Flow_table.find_exact (Switch.table sw) m ~priority:500
    = None);
  check_int "flowsdb cleaned" 0
    (Fabric.entry_count (Cluster.fabric cluster) ~node:0 ~cache:Names.flowsdb)

let test_port_status_cleans_links () =
  let engine, network, cluster = mk_cluster () in
  settle engine;
  let fabric = Cluster.fabric cluster in
  let before = Fabric.entry_count fabric ~node:0 ~cache:Names.linksdb in
  check_int "three links" 3 before;
  let graph = (Network.plan network).Builder.graph in
  let edge = List.hd (Jury_topo.Graph.edges graph) in
  Network.take_link_down network edge.Jury_topo.Graph.a edge.Jury_topo.Graph.b;
  settle engine;
  check_int "one link removed" 2
    (Fabric.entry_count fabric ~node:0 ~cache:Names.linksdb)

let test_plan_determinism_across_replicas () =
  let engine, network, cluster = mk_cluster () in
  List.iter Host.join (Network.hosts network);
  settle engine;
  (* Two different replicas planning AS the same primary, on converged
     state, must produce identical responses — the paper's output-
     determinism assumption. *)
  let h0 = Network.host network 0 and h3 = Network.host network 3 in
  let frame =
    Jury_packet.Frame.tcp_packet
      ~src:(Host.mac h0, Host.ip h0)
      ~dst:(Host.mac h3, Host.ip h3)
      ~src_port:999 ~dst_port:80 ()
  in
  let trigger =
    Types.Packet_in
      ( Dpid.of_int 1,
        { Of_message.buffer_id = None; in_port = 1;
          reason = Of_message.No_match; frame } )
  in
  let primary = Cluster.master_of cluster (Dpid.of_int 1) in
  let plans =
    List.init 3 (fun i ->
        Controller.plan_as (Cluster.controller cluster i) ~as_id:primary trigger)
  in
  let fps = List.map Types.fingerprint_response plans in
  check_bool "identical plans" true
    (List.for_all (fun fp -> fp = List.hd fps) fps);
  check_bool "plans act" true (List.for_all (fun p -> p <> []) plans)

let test_liveness_master () =
  let _, _, cluster = mk_cluster () in
  let ctrl = Cluster.controller cluster 0 in
  let d1 = Dpid.of_int 1 and d2 = Dpid.of_int 2 in
  let m1 = Cluster.master_of cluster d1 and m2 = Cluster.master_of cluster d2 in
  Alcotest.(check (option int))
    "higher master id wins"
    (Some (max m1 m2))
    (Controller.liveness_master_for_link ctrl d1 d2)

let test_mutator_and_fates () =
  let engine, _, cluster = mk_cluster () in
  settle engine;
  let ctrl = Cluster.controller cluster 0 in
  Controller.set_mutator ctrl (Some (fun _ _ -> []));
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 9) in
  let trigger =
    Types.Rest
      (Types.Install_flow
         { dpid = Dpid.of_int 1;
           flow = Of_message.flow_mod m [ Of_action.Output 1 ] })
  in
  Alcotest.(check int) "mutated to nothing" 0
    (List.length (Controller.shadow_execute ctrl trigger));
  Controller.set_mutator ctrl None;
  check_bool "restored" true (Controller.shadow_execute ctrl trigger <> []);
  Controller.set_omit_probability ctrl 1.0;
  (match Controller.sample_response_fate ctrl with
  | `Omit -> ()
  | `Respond _ -> Alcotest.fail "must omit at p=1");
  Controller.set_omit_probability ctrl 0.;
  (match Controller.sample_response_fate ctrl with
  | `Respond latency -> check_bool "positive latency" true Time.(latency > Time.zero)
  | `Omit -> Alcotest.fail "must respond at p=0")

let test_flow_removed_cleans_store () =
  let engine, network, cluster = mk_cluster () in
  settle engine;
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 9) in
  let flow = Of_message.flow_mod ~priority:500 m [ Of_action.Output 1 ] in
  let dpid = Dpid.of_int 1 in
  Cluster.rest cluster ~node:0 (Types.Install_flow { dpid; flow });
  settle engine;
  check_int "flow stored" 1
    (Fabric.entry_count (Cluster.fabric cluster) ~node:0 ~cache:Names.flowsdb);
  (* Delete directly at the switch; the FLOW_REMOVED notification should
     clean the store. *)
  let sw = Network.switch network dpid in
  Switch.handle_control sw
    (Of_message.make ~xid:9
       (Of_message.Flow_mod
          { (Of_message.flow_mod ~priority:500 m []) with
            Of_message.command = Of_message.Delete_strict }));
  settle engine;
  check_int "flowsdb cleaned via FLOW_REMOVED" 0
    (Fabric.entry_count (Cluster.fabric cluster) ~node:0 ~cache:Names.flowsdb)

let test_proactive_dst_rules () =
  (* Vanilla ODL: destination rules appear at every switch as soon as
     hosts are discovered; traffic then flows without PACKET_INs. *)
  let engine, network, _cluster =
    mk_cluster ~profile:Profile.odl_vanilla ~switches:3 ()
  in
  List.iter Host.join (Network.hosts network);
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 3));
  List.iter
    (fun sw ->
      check_bool
        ("dst rules at " ^ Dpid.to_string (Switch.dpid sw))
        true
        (Jury_openflow.Flow_table.size (Switch.table sw) >= 3))
    (Network.switches network);
  (* A TCP packet now rides pre-installed rules end to end: no new
     reactive micro-flow gets installed (LLDP probes still PACKET_IN in
     the background, so count store entries rather than messages). *)
  let h0 = Network.host network 0 and h2 = Network.host network 2 in
  let flows_before =
    Fabric.entry_count (Cluster.fabric _cluster) ~node:0 ~cache:Names.flowsdb
  in
  Host.send_tcp h0 ~dst_mac:(Host.mac h2) ~dst_ip:(Host.ip h2) ~src_port:7777
    ~dst_port:80 ();
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.ms 500));
  check_bool "delivered" true (Host.received_count h2 > 0);
  check_int "no reactive rule installed" flows_before
    (Fabric.entry_count (Cluster.fabric _cluster) ~node:0 ~cache:Names.flowsdb)

let test_query_flows () =
  let engine, _network, cluster = mk_cluster () in
  settle engine;
  let dpid = Dpid.of_int 1 in
  let m = Of_match.l2_dst ~dst:(Mac.of_host_index 9) in
  Cluster.rest cluster ~node:0
    (Types.Install_flow
       { dpid; flow = Of_message.flow_mod ~priority:500 m [ Of_action.Output 1 ] });
  settle engine;
  (match Cluster.query_flows cluster ~node:2 dpid with
  | [ fmv ] ->
      check_bool "match readable from any replica" true
        (Of_match.equal fmv.Of_message.fm_match m)
  | l -> Alcotest.failf "expected one flow, got %d" (List.length l));
  check_int "other switch empty" 0
    (List.length (Cluster.query_flows cluster ~node:0 (Dpid.of_int 3)))

let test_failover () =
  let engine, network, cluster = mk_cluster ~nodes:3 ~switches:6 () in
  List.iter Host.join (Network.hosts network);
  settle engine;
  let victim = 1 in
  let orphans =
    List.filter
      (fun sw -> Cluster.master_of cluster (Switch.dpid sw) = victim)
      (Network.switches network)
  in
  check_bool "victim mastered switches" true (orphans <> []);
  Jury_faults.Injector.crash cluster ~node:victim;
  Cluster.fail_over cluster ~node:victim;
  settle engine;
  Alcotest.(check (list int)) "alive set" [ 0; 2 ] (Cluster.alive_nodes cluster);
  List.iter
    (fun sw ->
      check_bool "reassigned away from victim" true
        (Cluster.master_of cluster (Switch.dpid sw) <> victim))
    (Network.switches network);
  (* Traffic through a formerly-orphaned switch still works: the new
     master answers its PACKET_INs. *)
  let dpid = Switch.dpid (List.hd orphans) in
  let host_on_victim_switch =
    List.find
      (fun h ->
        let d, _ = Network.host_location network (Host.index h) in
        Dpid.equal d dpid)
      (Network.hosts network)
  in
  let other = Network.host network 0 in
  let fm_before = Switch.flow_mod_count (List.hd orphans) in
  Host.send_tcp host_on_victim_switch ~dst_mac:(Host.mac other)
    ~dst_ip:(Host.ip other) ~src_port:4242 ~dst_port:80 ();
  settle engine;
  check_bool "new master installed a rule" true
    (Switch.flow_mod_count (List.hd orphans) > fm_before);
  check_bool "traffic delivered" true (Host.received_count other > 0)

(* --- Standalone profile and dynamic election --- *)

let test_standalone_mastership () =
  (* A standalone (Ryu-style) profile has no clustered store: the one
     leader masters every switch, and failover moves everything to the
     lowest survivor instead of round-robining. *)
  let engine, network, cluster =
    mk_cluster ~profile:Profile.ryu ~nodes:3 ~switches:5 ()
  in
  check_bool "fabric is standalone" true
    (Fabric.standalone (Cluster.fabric cluster));
  List.iter
    (fun sw ->
      check_int "leader masters every switch" 0
        (Cluster.master_of cluster (Switch.dpid sw)))
    (Network.switches network);
  Jury_faults.Injector.crash cluster ~node:0;
  Cluster.fail_over cluster ~node:0;
  settle engine;
  List.iter
    (fun sw ->
      check_int "lowest survivor takes everything" 1
        (Cluster.master_of cluster (Switch.dpid sw)))
    (Network.switches network)

let election_trace ~crash_first ~crash_second () =
  (* One full election run: enable the protocol, crash the leader, then
     a second node; return the recorded leadership changes. *)
  let engine, _network, cluster = mk_cluster ~nodes:3 ~switches:6 () in
  Cluster.enable_election cluster
    { Cluster.period = Time.ms 50; timeout_beats = 2 };
  let events = ref [] in
  Cluster.on_leadership_change cluster (fun ~term ~failed ~leader ->
      events := (term, failed, leader) :: !events);
  ignore
    (Engine.schedule engine ~after:(Time.ms 200) (fun () ->
         Jury_faults.Injector.crash cluster ~node:crash_first));
  ignore
    (Engine.schedule engine ~after:(Time.ms 600) (fun () ->
         Jury_faults.Injector.crash cluster ~node:crash_second));
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.sec 1));
  (List.rev !events, Cluster.current_term cluster, Cluster.leader cluster)

let test_election_deterministic () =
  (* Same seed, same crash schedule: the term sequence is a pure
     function of the run (the failure detector reads fault levers, not
     RNG), and the leader is always the lowest healthy id. *)
  let run () = election_trace ~crash_first:0 ~crash_second:1 () in
  let events, term, leader = run () in
  Alcotest.(check (list (triple int int int)))
    "term sequence" [ (2, 0, 1); (3, 1, 2) ] events;
  check_int "final term" 3 term;
  check_int "final leader" 2 leader;
  let events', term', leader' = run () in
  Alcotest.(check (list (triple int int int)))
    "same seed, same terms" events events';
  check_int "same final term" term term';
  check_int "same final leader" leader leader'

let test_election_rejoin_fresh_term () =
  (* A rejoined node is forgiven by the failure detector; crashing it
     again starts a fresh term rather than being swallowed. *)
  let engine, _network, cluster = mk_cluster ~nodes:3 ~switches:6 () in
  Cluster.enable_election cluster
    { Cluster.period = Time.ms 50; timeout_beats = 2 };
  let terms = ref [] in
  Cluster.on_leadership_change cluster (fun ~term ~failed:_ ~leader:_ ->
      terms := term :: !terms);
  let crash_at ms node =
    ignore
      (Engine.schedule engine ~after:(Time.ms ms) (fun () ->
           Jury_faults.Injector.crash cluster ~node))
  in
  crash_at 200 1;
  ignore
    (Engine.schedule engine ~after:(Time.ms 600) (fun () ->
         Jury_faults.Injector.heal cluster ~node:1;
         Cluster.rejoin cluster ~node:1));
  crash_at 900 1;
  Engine.run engine ~until:(Time.add (Engine.now engine) (Time.ms 1500));
  Alcotest.(check (list int)) "two distinct terms" [ 2; 3 ]
    (List.rev !terms);
  check_int "leader stays 0" 0 (Cluster.leader cluster)

let suite =
  [ ("values: host", `Quick, test_values_host);
    ("values: link", `Quick, test_values_link);
    ("values: flow", `Quick, test_values_flow);
    ("values: switch/master", `Quick, test_values_switch_master);
    ("taints", `Quick, test_taint);
    ("response fingerprints", `Quick, test_fingerprints);
    ("pipeline serial service", `Quick, test_pipeline_serial_service);
    ("pipeline add_load", `Quick, test_pipeline_add_load_delays_next);
    ("pipeline overload", `Quick, test_pipeline_overload_drops);
    ("bootstrap discovery", `Quick, test_bootstrap_discovery);
    ("mastership round robin", `Quick, test_mastership_round_robin);
    ("host learning", `Quick, test_host_learning);
    ("end-to-end forwarding", `Quick, test_end_to_end_forwarding);
    ("rest install incl. delegation", `Quick, test_rest_install_local_and_remote);
    ("rest delete", `Quick, test_rest_delete);
    ("port status cleans links", `Quick, test_port_status_cleans_links);
    ("plan determinism across replicas", `Quick, test_plan_determinism_across_replicas);
    ("liveness master election", `Quick, test_liveness_master);
    ("mutator and response fates", `Quick, test_mutator_and_fates);
    ("flow_removed cleans store", `Quick, test_flow_removed_cleans_store);
    ("proactive dst rules (vanilla ODL)", `Quick, test_proactive_dst_rules);
    ("mastership failover", `Quick, test_failover);
    ("standalone mastership (ryu)", `Quick, test_standalone_mastership);
    ("election deterministic across runs", `Quick,
     test_election_deterministic);
    ("election rejoin starts fresh term", `Quick,
     test_election_rejoin_fresh_term);
    ("northbound flow query", `Quick, test_query_flows) ]
