(* Smoke tests for the experiment harnesses: tiny versions of each
   figure must run and produce sane shapes. The bench regenerates the
   full figures; these only guard the plumbing. *)

module Time = Jury_sim.Time
module Figures = Jury_experiments.Figures
module Setup = Jury_experiments.Setup

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_setup_env () =
  let env =
    Setup.make ~seed:3 ~switches:4
      ~jury:(Jury.Jury_config.make ~k:2 ())
      ~profile:Jury_controller.Profile.onos ~nodes:3 ()
  in
  check_bool "validator available" true
    (match Setup.validator env with _ -> true);
  let t0 = Jury_sim.Engine.now env.Setup.engine in
  Jury_workload.Flows.controlled_mix env.Setup.network ~rng:env.Setup.rng
    ~packet_in_rate:200. ~duration:(Time.sec 1);
  Setup.run_for env (Time.sec 2);
  let decided, _, _ = Setup.verdict_stats_since env ~since:t0 in
  check_bool "some verdicts" true (decided > 50);
  check_bool "detection times recorded" true
    (Array.length (Setup.detection_times_since env ~since:t0) = decided)

let test_throughput_point_tracks_offered_load () =
  let low =
    Figures.fig4f ~seed:5 ~duration:(Time.sec 1) ~rates:[ 500. ]
      ~nodes_list:[ 1 ] ()
  in
  match low with
  | [ { Figures.points = [ (_, measured) ]; _ } ] ->
      check_bool "under capacity tracks offered" true
        (measured > 350. && measured < 650.)
  | _ -> Alcotest.fail "unexpected series shape"

let test_policy_scaling_linear () =
  let rows = Figures.policy_scaling ~iterations:300 ~sizes:[ 100; 1000 ] () in
  match rows with
  | [ (100, t100); (1000, t1000) ] ->
      check_bool "more policies cost more" true (t1000 > t100);
      check_bool "roughly linear (x4..x25)" true
        (t1000 /. Float.max 0.01 t100 > 4.)
  | _ -> Alcotest.fail "unexpected rows"

let test_detection_run_exposed () =
  let samples =
    Figures.detection_run_exposed ~seed:9 ~k:2 ~m:0 ~rate:400.
      ~duration:(Time.sec 1)
  in
  check_bool "samples collected" true (Array.length samples > 100);
  let s = Jury_stats.Summary.of_array samples in
  check_bool "median under the timeout" true (s.Jury_stats.Summary.p50 < 150.)

let test_detection_phase_cdfs () =
  let series =
    Figures.detection_phase_cdfs ~seed:9 ~rate:400. ~duration:(Time.sec 1) ()
  in
  let find label =
    List.find_opt (fun s -> s.Figures.label = label) series
  in
  check_bool "total series present" true (find "span/total" <> None);
  check_bool "replicate series present" true (find "span/replicate" <> None);
  check_bool "validate series present" true (find "span/validate" <> None);
  let total = Option.get (find "span/total") in
  check_bool "total has samples" true (total.Figures.samples > 10);
  (* The validator's wait dominates a trigger's end-to-end latency. *)
  let validate = Option.get (find "span/validate") in
  check_bool "validate below total p95" true
    (validate.Figures.p95_ms <= total.Figures.p95_ms +. 1e-6)

let test_packet_out_peak () =
  (* §VII-B1: PACKET_OUT throughput dwarfs the FLOW_MOD pipeline. *)
  check_bool "way above flow-mod rate" true (Figures.packet_out_peak () > 100_000.)

let test_overhead_accounting () =
  let env =
    Setup.make ~seed:11 ~switches:4
      ~jury:(Jury.Jury_config.make ~k:2 ())
      ~profile:Jury_controller.Profile.onos ~nodes:3 ()
  in
  let dep = Option.get env.Setup.deployment in
  Jury.Deployment.reset_accounting dep;
  check_int "reset replication" 0 (Jury.Deployment.replication_bytes dep);
  Jury_workload.Flows.new_connections env.Setup.network ~rng:env.Setup.rng
    ~rate:100. ~duration:(Time.sec 1) ~mode:Jury_workload.Flows.Any_pair ();
  Setup.run_for env (Time.sec 2);
  check_bool "replication bytes counted" true
    (Jury.Deployment.replication_bytes dep > 0);
  check_bool "validator bytes counted" true
    (Jury.Deployment.validator_bytes dep > 0);
  check_bool "chatter counted" true (Jury.Deployment.chatter_bytes dep > 0);
  check_bool "triggers counted" true
    (Jury.Deployment.replicated_trigger_count dep > 50)

let test_odl_encapsulated_path () =
  (* The ODL deployment replicates triggers as doubly-encapsulated
     PACKET_INs; every replica pays a measured decapsulation cost. *)
  let env =
    Setup.make ~seed:13 ~switches:4
      ~jury:(Jury.Jury_config.make ~k:2 ~encapsulation:true ())
      ~profile:Jury_controller.Profile.odl ~nodes:3 ()
  in
  let dep = Option.get env.Setup.deployment in
  Jury.Deployment.reset_accounting dep;
  Jury_workload.Flows.new_connections env.Setup.network ~rng:env.Setup.rng
    ~rate:50. ~duration:(Time.sec 1) ~mode:Jury_workload.Flows.Any_pair ();
  Setup.run_for env (Time.sec 3);
  let samples = Jury.Deployment.decap_samples_us dep in
  check_bool "decap samples collected" true (Array.length samples > 20);
  let s = Jury_stats.Summary.of_array samples in
  check_bool "median near profile" true
    (s.Jury_stats.Summary.p50 > 40. && s.Jury_stats.Summary.p50 < 250.);
  (* encapsulation costs extra bytes vs plain replication *)
  check_bool "replication bytes include encap overhead" true
    (Jury.Deployment.replication_bytes dep
    > Jury.Deployment.replicated_trigger_count dep * 60)

let test_ablation_nondeterminism_shape () =
  match Figures.ablation_nondeterminism ~duration:(Time.sec 2) () with
  | [ (_, _, faults_base, _); (_, _, faults_on, nondet_on);
      (_, _, faults_off, nondet_off) ] ->
      check_bool "deterministic baseline is cleanest" true
        (faults_base <= faults_on);
      check_bool "rule does not hurt" true (faults_on <= faults_off);
      check_bool "nondet labels only with the rule" true
        (nondet_on >= nondet_off)
  | _ -> Alcotest.fail "three rows expected"

let suite =
  [ ("setup env", `Slow, test_setup_env);
    ("throughput point", `Slow, test_throughput_point_tracks_offered_load);
    ("policy scaling linear", `Quick, test_policy_scaling_linear);
    ("detection run", `Slow, test_detection_run_exposed);
    ("detection phase cdfs", `Slow, test_detection_phase_cdfs);
    ("packet_out peak", `Quick, test_packet_out_peak);
    ("overhead accounting", `Slow, test_overhead_accounting);
    ("odl encapsulated path", `Slow, test_odl_encapsulated_path);
    ("nondeterminism ablation shape", `Slow, test_ablation_nondeterminism_shape) ]
